//! Request/reply active messages — CMAM's round-trip primitive.
//!
//! An RPC is two single-packet deliveries: a request that runs a
//! registered handler at the destination, and a reply carrying the
//! handler's result back. Footnote 6 of the paper notes that the CMAM
//! round-trip protocol is only *safe* because the CM-5 has two separate
//! networks; run this layer over a
//! [`DualNetwork`](timego_netsim::DualNetwork) with
//! [`Tags::RPC_REPLY`](crate::Tags) as the reply threshold to get the
//! same property (replies always drain even when the request network is
//! saturated).

use timego_cost::Fine;
use timego_netsim::NodeId;
use timego_ni::Memory;

use crate::am::{Am4Msg, PollOutcome};
use crate::costs::{am4_recv, am4_send};
use crate::error::ProtocolError;
use crate::machine::{Machine, Tags};

/// The result of servicing one node once (see [`Machine::rpc_service`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RpcEvent {
    /// Nothing was waiting.
    Idle,
    /// A request was handled and its reply injected.
    Served(u8),
    /// A reply arrived (correlation id, payload).
    Reply(u64, [u32; 4]),
    /// A non-RPC message arrived; handed back unprocessed.
    Other(Am4Msg),
}

impl Machine {
    /// Register an RPC handler on `node` for requests with `tag`. The
    /// handler receives the node's memory and the request, and returns
    /// the four reply words.
    ///
    /// # Panics
    ///
    /// Panics if the tag is reserved (below [`Tags::USER_BASE`] or equal
    /// to [`Tags::RPC_REPLY`]) or `node` is out of range.
    pub fn register_rpc_handler(
        &mut self,
        node: NodeId,
        tag: u8,
        handler: impl FnMut(&mut Memory, Am4Msg) -> [u32; 4] + 'static,
    ) {
        assert!(
            tag >= Tags::USER_BASE && tag != Tags::RPC_REPLY,
            "tag {tag} is reserved"
        );
        self.nodes[node.index()].rpc_handlers.insert(tag, Box::new(handler));
    }

    /// Perform a blocking RPC: send `args` to the handler registered
    /// for `tag` on `dst` and return its reply words. Drives both
    /// endpoints (and services interleaved requests arriving at `src`).
    ///
    /// Cost: one Table 1 send + receive at each end (the paper's
    /// cheapest safe round trip: 2 × 47 instructions plus handler
    /// dispatch).
    ///
    /// # Errors
    ///
    /// [`ProtocolError::Timeout`] if no reply arrives within the
    /// configured wait bound (e.g. the request or reply was corrupted
    /// on a detect-only substrate).
    ///
    /// # Panics
    ///
    /// Panics if either node is out of range or `src == dst`.
    pub fn rpc_call(
        &mut self,
        src: NodeId,
        dst: NodeId,
        tag: u8,
        args: [u32; 4],
    ) -> Result<[u32; 4], ProtocolError> {
        assert_ne!(src, dst, "rpc endpoints must differ");
        let call_id = self.next_call_id;
        self.next_call_id += 1;
        self.rpc_send(src, dst, tag, call_id, args)?;

        let max_wait = self.cfg.max_wait_cycles;
        let mut waited = 0;
        loop {
            // Service the callee (and anything queued at the caller).
            let _ = self.rpc_service(dst);
            match self.rpc_service(src) {
                RpcEvent::Reply(id, words) if id == call_id => return Ok(words),
                RpcEvent::Reply(..) => { /* stale reply for someone else: dropped */ }
                RpcEvent::Idle => {
                    self.advance(1);
                    waited += 1;
                    if waited > max_wait {
                        return Err(ProtocolError::Timeout {
                            waiting_for: "rpc reply",
                            cycles: waited,
                        });
                    }
                }
                RpcEvent::Served(_) | RpcEvent::Other(_) => {}
            }
        }
    }

    /// Poll `node` once in RPC terms: serve one pending request (run
    /// its handler, inject the reply) or surface one reply. Useful for
    /// building servers that interleave RPC service with other work.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    pub fn rpc_service(&mut self, node: NodeId) -> RpcEvent {
        let n = &mut self.nodes[node.index()];
        n.cpu.call(am4_recv::CALL);
        n.cpu.ctrl(am4_recv::CTRL);
        if !n.ni.poll_status() {
            return RpcEvent::Idle;
        }
        n.cpu.reg(Fine::CheckStatus, am4_recv::STATUS_REG);
        let Some((msg_src, tag)) = n.ni.latch_rx() else {
            return RpcEvent::Idle;
        };
        let header = n.ni.read_header();
        let (w0, w1) = n.ni.read_payload2();
        let (w2, w3) = n.ni.read_payload2();
        let msg = Am4Msg { src: msg_src, tag, header, words: [w0, w1, w2, w3] };

        if tag == Tags::RPC_REPLY {
            return RpcEvent::Reply(u64::from(msg.header), msg.words);
        }
        if let Some(mut h) = n.rpc_handlers.remove(&tag) {
            n.cpu.handler(2);
            let reply = h(&mut n.mem, msg);
            self.nodes[node.index()].rpc_handlers.insert(tag, h);
            // Inject the reply (a Table 1 single-packet send, carrying
            // the correlation id in the header word).
            self.rpc_send(node, msg_src, Tags::RPC_REPLY, u64::from(header), reply)
                .expect("reply injection retries internally");
            return RpcEvent::Served(tag);
        }
        RpcEvent::Other(msg)
    }

    /// A Table 1-shaped single-packet send with an explicit header word
    /// (the RPC correlation id).
    fn rpc_send(
        &mut self,
        from: NodeId,
        to: NodeId,
        tag: u8,
        header: u64,
        words: [u32; 4],
    ) -> Result<(), ProtocolError> {
        let max_wait = self.cfg.max_wait_cycles;
        let node = self.node_mut(from);
        let mut waited = 0;
        loop {
            node.cpu.call(am4_send::CALL);
            node.cpu.reg(Fine::NiSetup, am4_send::SETUP_REG);
            node.ni.stage_envelope(to, tag, header as u32);
            node.ni.push_payload2(words[0], words[1]);
            node.ni.push_payload2(words[2], words[3]);
            node.cpu.reg(Fine::CheckStatus, am4_send::STATUS_REG);
            node.cpu.ctrl(am4_send::CTRL);
            if node.ni.commit_send() {
                node.ni.load_send_status();
                return Ok(());
            }
            if waited >= max_wait {
                return Err(ProtocolError::Timeout { waiting_for: "rpc injection", cycles: waited });
            }
            node.ni.advance(1);
            waited += 1;
        }
    }
}

/// Convert a [`PollOutcome`] into an [`RpcEvent`] mapping (test/debug
/// aid): replies become `Reply`, everything else `Other`/`Idle`.
pub fn classify_poll(outcome: PollOutcome) -> RpcEvent {
    match outcome {
        PollOutcome::Idle => RpcEvent::Idle,
        PollOutcome::Handled(tag) => RpcEvent::Served(tag),
        PollOutcome::Unclaimed(msg) if msg.tag == Tags::RPC_REPLY => {
            RpcEvent::Reply(u64::from(msg.header), msg.words)
        }
        PollOutcome::Unclaimed(msg) => RpcEvent::Other(msg),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::CmamConfig;
    use timego_cost::Class;
    use timego_netsim::{
        DeliveryScript, DualNetwork, Mesh2D, ScriptedNetwork, SwitchedConfig, SwitchedNetwork,
    };
    use timego_ni::share;

    fn n(i: usize) -> NodeId {
        NodeId::new(i)
    }

    fn machine() -> Machine {
        Machine::new(
            share(ScriptedNetwork::new(2, DeliveryScript::InOrder)),
            2,
            CmamConfig::default(),
        )
    }

    #[test]
    fn rpc_round_trip_returns_handler_result() {
        let mut m = machine();
        m.register_rpc_handler(n(1), 40, |_, msg| {
            [msg.words.iter().sum(), msg.words[0], 0, 1]
        });
        let reply = m.rpc_call(n(0), n(1), 40, [1, 2, 3, 4]).unwrap();
        assert_eq!(reply, [10, 1, 0, 1]);
    }

    #[test]
    fn rpc_costs_two_round_trip_singles() {
        let mut m = machine();
        m.register_rpc_handler(n(1), 40, |_, _| [0; 4]);
        m.reset_costs();
        m.rpc_call(n(0), n(1), 40, [0; 4]).unwrap();
        let src = m.cpu(n(0)).snapshot();
        let dst = m.cpu(n(1)).snapshot();
        // Caller: one 20-instruction send + one 27-instruction receive
        // (plus the service polls the driver makes at the callee before
        // the request lands are charged to the callee).
        assert_eq!(src.class_total(Class::Dev), 5 + 5);
        assert_eq!(dst.class_total(Class::Dev) % 5, 0); // sends+receives only
        assert_eq!(src.total(), 20 + 27);
        // Callee: receive 27 + handler dispatch 2 + reply send 20.
        assert_eq!(dst.total(), 27 + 2 + 20);
    }

    #[test]
    fn concurrent_calls_correlate_correctly() {
        let mut m = machine();
        m.register_rpc_handler(n(1), 40, |_, msg| [msg.words[0] * 2, 0, 0, 0]);
        for v in [5u32, 9, 100] {
            let reply = m.rpc_call(n(0), n(1), 40, [v, 0, 0, 0]).unwrap();
            assert_eq!(reply[0], v * 2);
        }
    }

    #[test]
    fn rpc_over_dual_network_is_safe_under_request_pressure() {
        let tight = || {
            SwitchedNetwork::new(
                Mesh2D::new(2, 1),
                SwitchedConfig {
                    link_queue_capacity: 2,
                    rx_queue_capacity: 2,
                    ..SwitchedConfig::default()
                },
            )
        };
        let net = DualNetwork::new(tight(), tight(), Tags::RPC_REPLY);
        let mut m = Machine::new(share(net), 2, CmamConfig::default());
        m.register_rpc_handler(n(1), 33, |_, msg| [msg.words[0] + 1, 0, 0, 0]);
        for v in 0..32u32 {
            let reply = m.rpc_call(n(0), n(1), 33, [v, 0, 0, 0]).unwrap();
            assert_eq!(reply[0], v + 1);
        }
    }

    #[test]
    fn handler_memory_access_is_costed_to_callee() {
        let mut m = machine();
        m.register_rpc_handler(n(1), 50, |mem, msg| {
            let a = mem.alloc(1);
            mem.store(a, msg.words[0]);
            [mem.load(a), 0, 0, 0]
        });
        m.reset_costs();
        let reply = m.rpc_call(n(0), n(1), 50, [77, 0, 0, 0]).unwrap();
        assert_eq!(reply[0], 77);
        assert_eq!(m.cpu(n(1)).snapshot().class_total(Class::Mem), 2);
    }

    #[test]
    #[should_panic(expected = "reserved")]
    fn reply_tag_cannot_be_registered() {
        let mut m = machine();
        m.register_rpc_handler(n(0), Tags::RPC_REPLY, |_, _| [0; 4]);
    }

    #[test]
    fn classify_poll_maps_outcomes() {
        assert_eq!(classify_poll(PollOutcome::Idle), RpcEvent::Idle);
        assert_eq!(classify_poll(PollOutcome::Handled(40)), RpcEvent::Served(40));
        let reply = Am4Msg { src: n(0), tag: Tags::RPC_REPLY, header: 7, words: [1; 4] };
        assert_eq!(classify_poll(PollOutcome::Unclaimed(reply)), RpcEvent::Reply(7, [1; 4]));
    }
}
