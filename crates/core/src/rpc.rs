//! Request/reply active messages — CMAM's round-trip primitive.
//!
//! An RPC is two single-packet deliveries: a request that runs a
//! registered handler at the destination, and a reply carrying the
//! handler's result back. Footnote 6 of the paper notes that the CMAM
//! round-trip protocol is only *safe* because the CM-5 has two separate
//! networks; run this layer over a
//! [`DualNetwork`](timego_netsim::DualNetwork) with
//! [`Tags::RPC_REPLY`](crate::Tags) as the reply threshold to get the
//! same property (replies always drain even when the request network is
//! saturated).

use timego_cost::{Feature, Fine};
use timego_netsim::NodeId;
use timego_ni::Memory;

use crate::am::{Am4Msg, PollOutcome};
use crate::costs::{am4_recv, am4_send, recovery};
use crate::engine::{Engine, OpOutcome};
use crate::error::ProtocolError;
use crate::machine::{Machine, Tags};
use crate::retry::{RecoveryPolicy, RetryPolicy};

/// The result of servicing one node once (see [`Machine::rpc_service`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RpcEvent {
    /// Nothing was waiting.
    Idle,
    /// A request was handled and its reply injected.
    Served(u8),
    /// A reply arrived (correlation id, payload).
    Reply(u64, [u32; 4]),
    /// A retransmitted request for a call already served arrived; the
    /// cached reply was re-sent without re-running the handler.
    Duplicate(u8),
    /// A non-RPC message arrived; handed back unprocessed.
    Other(Am4Msg),
}

impl Machine {
    /// Register an RPC handler on `node` for requests with `tag`. The
    /// handler receives the node's memory and the request, and returns
    /// the four reply words.
    ///
    /// # Panics
    ///
    /// Panics if the tag is reserved (below [`Tags::USER_BASE`] or equal
    /// to [`Tags::RPC_REPLY`]) or `node` is out of range.
    pub fn register_rpc_handler(
        &mut self,
        node: NodeId,
        tag: u8,
        handler: impl FnMut(&mut Memory, Am4Msg) -> [u32; 4] + 'static,
    ) {
        assert!(
            tag >= Tags::USER_BASE && tag != Tags::RPC_REPLY,
            "tag {tag} is reserved"
        );
        self.nodes[node.index()].rpc_handlers.insert(tag, Box::new(handler));
    }

    /// Perform a blocking RPC: send `args` to the handler registered
    /// for `tag` on `dst` and return its reply words. Drives both
    /// endpoints (and services interleaved requests arriving at `src`).
    ///
    /// Cost: one Table 1 send + receive at each end (the paper's
    /// cheapest safe round trip: 2 × 47 instructions plus handler
    /// dispatch).
    ///
    /// # Errors
    ///
    /// [`ProtocolError::Timeout`] if no reply arrives within the
    /// configured wait bound (e.g. the request or reply was corrupted
    /// on a detect-only substrate).
    ///
    /// # Panics
    ///
    /// Panics if either node is out of range or `src == dst`.
    pub fn rpc_call(
        &mut self,
        src: NodeId,
        dst: NodeId,
        tag: u8,
        args: [u32; 4],
    ) -> Result<[u32; 4], ProtocolError> {
        let mut eng = Engine::new();
        let op = eng.submit_rpc(self, src, dst, tag, args, None);
        eng.run(self);
        match eng.take_outcome(op).expect("op completed") {
            Ok(OpOutcome::Rpc(words)) => Ok(words),
            Err(e) => Err(e),
            Ok(_) => unreachable!("rpc op yields reply words"),
        }
    }

    /// Perform a blocking RPC with bounded retry: like
    /// [`Machine::rpc_call`], but a lost request or reply is recovered by
    /// retransmitting the request after an exponential-backoff window
    /// (see [`RetryPolicy`]). The callee answers retransmitted requests
    /// from its reply cache, so the handler runs **exactly once** per
    /// call even when the request is retried or duplicated in the
    /// network. All recovery work — the retransmissions and the
    /// duplicate-suppression machinery — is charged to
    /// `Feature::FaultTol`; on a fault-free run this executes (and
    /// costs) exactly what [`Machine::rpc_call`] does.
    ///
    /// # Errors
    ///
    /// [`ProtocolError::Timeout`] (with node and attempt context) once
    /// every attempt's window has expired without a reply.
    ///
    /// # Panics
    ///
    /// Panics if either node is out of range, `src == dst`, or the
    /// policy allows zero attempts.
    pub fn rpc_call_retrying(
        &mut self,
        src: NodeId,
        dst: NodeId,
        tag: u8,
        args: [u32; 4],
        policy: &RetryPolicy,
    ) -> Result<[u32; 4], ProtocolError> {
        let mut eng = Engine::new();
        let op = eng.submit_rpc(self, src, dst, tag, args, Some(policy));
        eng.run(self);
        match eng.take_outcome(op).expect("op completed") {
            Ok(OpOutcome::Rpc(words)) => Ok(words),
            Err(e) => Err(e),
            Ok(_) => unreachable!("rpc op yields reply words"),
        }
    }

    /// [`Machine::rpc_call_retrying`] hardened against node
    /// crash-restarts: when the call dies with a retryable error (the
    /// callee or caller crashed mid-call, every retry window expired),
    /// the engine parks the op for the recovery policy's backoff window
    /// and re-executes it — the re-execution reuses the **same call id**,
    /// so a callee that already served the call answers from its reply
    /// cache and the handler still runs exactly once per logical call.
    /// (A callee that crashed loses its cache with everything else; the
    /// re-run handler executes on the fresh incarnation, which is the
    /// correct at-most-once-per-incarnation semantics.) Every
    /// re-execution bills the session-restart shape to
    /// `Feature::FaultTol` at the caller; a clean run is
    /// instruction-identical to [`Machine::rpc_call_retrying`].
    ///
    /// Returns the reply words plus the number of re-executions (zero
    /// when the first execution succeeded).
    ///
    /// # Errors
    ///
    /// The last execution's error once the recovery budget is exhausted
    /// (non-retryable errors surface immediately).
    ///
    /// # Panics
    ///
    /// Panics if either node is out of range, `src == dst`, the retry
    /// policy allows zero attempts, or `recovery.max_executions` is
    /// zero.
    pub fn rpc_call_recovering(
        &mut self,
        src: NodeId,
        dst: NodeId,
        tag: u8,
        args: [u32; 4],
        policy: &RetryPolicy,
        recovery: &RecoveryPolicy,
    ) -> Result<([u32; 4], u32), ProtocolError> {
        let mut eng = Engine::new();
        let op = eng.submit_rpc_recovering(self, src, dst, tag, args, Some(policy), recovery);
        eng.run(self);
        let re_executions = eng.recovery_executions(op);
        match eng.take_outcome(op).expect("op completed") {
            Ok(OpOutcome::Rpc(words)) => Ok((words, re_executions)),
            Err(e) => Err(e),
            Ok(_) => unreachable!("rpc op yields reply words"),
        }
    }

    /// Poll `node` once in RPC terms: serve one pending request (run
    /// its handler, inject the reply) or surface one reply. Useful for
    /// building servers that interleave RPC service with other work.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    pub fn rpc_service(&mut self, node: NodeId) -> RpcEvent {
        let n = &mut self.nodes[node.index()];
        n.cpu.call(am4_recv::CALL);
        n.cpu.ctrl(am4_recv::CTRL);
        if !n.ni.poll_status() {
            return RpcEvent::Idle;
        }
        n.cpu.reg(Fine::CheckStatus, am4_recv::STATUS_REG);
        let Some((msg_src, tag)) = n.ni.latch_rx() else {
            return RpcEvent::Idle;
        };
        let header = n.ni.read_header();
        let (w0, w1) = n.ni.read_payload2();
        let (w2, w3) = n.ni.read_payload2();
        let msg = Am4Msg { src: msg_src, tag, header, words: [w0, w1, w2, w3] };

        if tag == Tags::RPC_REPLY {
            return RpcEvent::Reply(u64::from(msg.header), msg.words);
        }
        let Some(mut h) = n.rpc_handlers.remove(&tag) else {
            return RpcEvent::Other(msg);
        };
        // A retransmitted request for a call already served: answer from
        // the reply cache without re-running the handler, so handlers
        // execute exactly once per call id. The cache probe is only
        // charged on a hit — on the fault-free path the lookup folds
        // into the existing dispatch and the service costs exactly what
        // it did without retry support.
        if let Some(cached) = self.rpc_replies.get(&(node, msg_src, header)).map(|r| r.words) {
            self.nodes[node.index()].rpc_handlers.insert(tag, h);
            let cpu = self.nodes[node.index()].cpu.clone();
            cpu.with_feature(Feature::FaultTol, |c| {
                c.reg(Fine::RegOp, recovery::RPC_DEDUP_REG);
            });
            cpu.with_feature(Feature::FaultTol, |_| {
                self.rpc_send(node, msg_src, Tags::RPC_REPLY, u64::from(header), cached)
            })
            .expect("reply injection retries internally");
            return RpcEvent::Duplicate(tag);
        }
        let n = &mut self.nodes[node.index()];
        n.cpu.handler(2);
        let reply = h(&mut n.mem, msg);
        self.nodes[node.index()].rpc_handlers.insert(tag, h);
        // Remember the reply for duplicate suppression (harness state,
        // cost-free; the probe above is what a hit costs). The clock
        // stamp is what the epoch-TTL sweep ages against.
        let cached_at = self.net.borrow().now().cycles();
        self.rpc_replies
            .insert((node, msg_src, header), crate::machine::ReplyEntry { words: reply, cached_at });
        // Inject the reply (a Table 1 single-packet send, carrying
        // the correlation id in the header word).
        self.rpc_send(node, msg_src, Tags::RPC_REPLY, u64::from(header), reply)
            .expect("reply injection retries internally");
        RpcEvent::Served(tag)
    }

    /// One attempt at the Table 1-shaped single-packet send with an
    /// explicit header word (the RPC correlation id). Returns `false`
    /// on backpressure; the costs are paid again on re-issue, as on the
    /// real machine.
    pub(crate) fn rpc_send_once(
        &mut self,
        from: NodeId,
        to: NodeId,
        tag: u8,
        header: u64,
        words: [u32; 4],
    ) -> bool {
        let node = self.node_mut(from);
        node.cpu.call(am4_send::CALL);
        node.cpu.reg(Fine::NiSetup, am4_send::SETUP_REG);
        node.ni.stage_envelope(to, tag, header as u32);
        node.ni.push_payload2(words[0], words[1]);
        node.ni.push_payload2(words[2], words[3]);
        node.cpu.reg(Fine::CheckStatus, am4_send::STATUS_REG);
        node.cpu.ctrl(am4_send::CTRL);
        node.ni.commit_send() && {
            node.ni.load_send_status();
            true
        }
    }

    /// A Table 1-shaped single-packet send, re-issued on backpressure
    /// until the network accepts it or the wait bound is exceeded.
    fn rpc_send(
        &mut self,
        from: NodeId,
        to: NodeId,
        tag: u8,
        header: u64,
        words: [u32; 4],
    ) -> Result<(), ProtocolError> {
        let max_wait = self.cfg.max_wait_cycles;
        let mut waited = 0;
        while !self.rpc_send_once(from, to, tag, header, words) {
            if waited >= max_wait {
                return Err(ProtocolError::timeout("rpc injection", waited));
            }
            self.node_mut(from).ni.advance(1);
            waited += 1;
        }
        Ok(())
    }
}

/// Convert a [`PollOutcome`] into an [`RpcEvent`] mapping (test/debug
/// aid): replies become `Reply`, everything else `Other`/`Idle`.
pub fn classify_poll(outcome: PollOutcome) -> RpcEvent {
    match outcome {
        PollOutcome::Idle => RpcEvent::Idle,
        PollOutcome::Handled(tag) => RpcEvent::Served(tag),
        PollOutcome::Unclaimed(msg) if msg.tag == Tags::RPC_REPLY => {
            RpcEvent::Reply(u64::from(msg.header), msg.words)
        }
        PollOutcome::Unclaimed(msg) => RpcEvent::Other(msg),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::CmamConfig;
    use timego_cost::Class;
    use timego_netsim::{
        DeliveryScript, DualNetwork, Mesh2D, ScriptedNetwork, SwitchedConfig, SwitchedNetwork,
    };
    use timego_ni::share;

    fn n(i: usize) -> NodeId {
        NodeId::new(i)
    }

    fn machine() -> Machine {
        Machine::new(
            share(ScriptedNetwork::new(2, DeliveryScript::InOrder)),
            2,
            CmamConfig::default(),
        )
    }

    #[test]
    fn rpc_round_trip_returns_handler_result() {
        let mut m = machine();
        m.register_rpc_handler(n(1), 40, |_, msg| {
            [msg.words.iter().sum(), msg.words[0], 0, 1]
        });
        let reply = m.rpc_call(n(0), n(1), 40, [1, 2, 3, 4]).unwrap();
        assert_eq!(reply, [10, 1, 0, 1]);
    }

    #[test]
    fn rpc_costs_two_round_trip_singles() {
        let mut m = machine();
        m.register_rpc_handler(n(1), 40, |_, _| [0; 4]);
        m.reset_costs();
        m.rpc_call(n(0), n(1), 40, [0; 4]).unwrap();
        let src = m.cpu(n(0)).snapshot();
        let dst = m.cpu(n(1)).snapshot();
        // Caller: one 20-instruction send + one 27-instruction receive
        // (plus the service polls the driver makes at the callee before
        // the request lands are charged to the callee).
        assert_eq!(src.class_total(Class::Dev), 5 + 5);
        assert_eq!(dst.class_total(Class::Dev) % 5, 0); // sends+receives only
        assert_eq!(src.total(), 20 + 27);
        // Callee: receive 27 + handler dispatch 2 + reply send 20.
        assert_eq!(dst.total(), 27 + 2 + 20);
    }

    #[test]
    fn concurrent_calls_correlate_correctly() {
        let mut m = machine();
        m.register_rpc_handler(n(1), 40, |_, msg| [msg.words[0] * 2, 0, 0, 0]);
        for v in [5u32, 9, 100] {
            let reply = m.rpc_call(n(0), n(1), 40, [v, 0, 0, 0]).unwrap();
            assert_eq!(reply[0], v * 2);
        }
    }

    #[test]
    fn rpc_over_dual_network_is_safe_under_request_pressure() {
        let tight = || {
            SwitchedNetwork::new(
                Mesh2D::new(2, 1),
                SwitchedConfig {
                    link_queue_capacity: 2,
                    rx_queue_capacity: 2,
                    ..SwitchedConfig::default()
                },
            )
        };
        let net = DualNetwork::new(tight(), tight(), Tags::RPC_REPLY);
        let mut m = Machine::new(share(net), 2, CmamConfig::default());
        m.register_rpc_handler(n(1), 33, |_, msg| [msg.words[0] + 1, 0, 0, 0]);
        for v in 0..32u32 {
            let reply = m.rpc_call(n(0), n(1), 33, [v, 0, 0, 0]).unwrap();
            assert_eq!(reply[0], v + 1);
        }
    }

    #[test]
    fn handler_memory_access_is_costed_to_callee() {
        let mut m = machine();
        m.register_rpc_handler(n(1), 50, |mem, msg| {
            let a = mem.alloc(1);
            mem.store(a, msg.words[0]);
            [mem.load(a), 0, 0, 0]
        });
        m.reset_costs();
        let reply = m.rpc_call(n(0), n(1), 50, [77, 0, 0, 0]).unwrap();
        assert_eq!(reply[0], 77);
        assert_eq!(m.cpu(n(1)).snapshot().class_total(Class::Mem), 2);
    }

    #[test]
    #[should_panic(expected = "reserved")]
    fn reply_tag_cannot_be_registered() {
        let mut m = machine();
        m.register_rpc_handler(n(0), Tags::RPC_REPLY, |_, _| [0; 4]);
    }

    #[test]
    fn retried_rpc_on_clean_network_costs_exactly_rpc_call() {
        // Zero-cost-when-clean: with no faults, `rpc_call_retrying`
        // executes (and costs) exactly what `rpc_call` does, feature by
        // feature.
        let mut plain = machine();
        plain.register_rpc_handler(n(1), 40, |_, msg| [msg.words[0] + 1, 0, 0, 0]);
        plain.reset_costs();
        plain.rpc_call(n(0), n(1), 40, [7, 0, 0, 0]).unwrap();

        let mut retried = machine();
        retried.register_rpc_handler(n(1), 40, |_, msg| [msg.words[0] + 1, 0, 0, 0]);
        retried.reset_costs();
        let reply = retried
            .rpc_call_retrying(n(0), n(1), 40, [7, 0, 0, 0], &crate::RetryPolicy::default())
            .unwrap();
        assert_eq!(reply, [8, 0, 0, 0]);

        for node in [n(0), n(1)] {
            let a = plain.cpu(node).snapshot();
            let b = retried.cpu(node).snapshot();
            for f in Feature::ALL {
                assert_eq!(
                    a.feature_total(f),
                    b.feature_total(f),
                    "node {node:?} feature {f}: retried RPC must be free when clean"
                );
            }
        }
    }

    #[test]
    fn duplicated_request_runs_handler_exactly_once() {
        use std::cell::RefCell;
        use std::rc::Rc;
        use timego_netsim::{FaultConfig, Mesh2D, SwitchedConfig, SwitchedNetwork};

        let fault = FaultConfig {
            duplicate_prob: 0.4,
            ..FaultConfig::default()
        };
        let mut dup_seen = false;
        for seed in 0..8u64 {
            let net = SwitchedNetwork::new(
                Mesh2D::new(2, 1),
                SwitchedConfig {
                    rx_queue_capacity: 64,
                    fault: fault.clone(),
                    seed,
                    ..SwitchedConfig::default()
                },
            );
            let mut m = Machine::new(share(net), 2, CmamConfig::default());
            let runs = Rc::new(RefCell::new(0u32));
            let runs2 = runs.clone();
            m.register_rpc_handler(n(1), 40, move |_, msg| {
                *runs2.borrow_mut() += 1;
                [msg.words[0] * 2, 0, 0, 0]
            });
            for v in 0..12u32 {
                let reply = m
                    .rpc_call_retrying(n(0), n(1), 40, [v, 0, 0, 0], &crate::RetryPolicy::default())
                    .unwrap();
                assert_eq!(reply[0], v * 2, "seed {seed} call {v}");
            }
            assert_eq!(
                *runs.borrow(),
                12,
                "seed {seed}: handler must run exactly once per call despite duplication"
            );
            if m.network().borrow().stats().duplicated > 0 {
                dup_seen = true;
            }
        }
        assert!(dup_seen, "at least one seed must actually duplicate packets");
    }

    #[test]
    fn retried_rpc_recovers_from_drops() {
        use timego_netsim::{FaultConfig, Mesh2D, SwitchedConfig, SwitchedNetwork};
        let fault = FaultConfig {
            drop_prob: 0.25,
            ..FaultConfig::default()
        };
        for seed in 0..8u64 {
            let net = SwitchedNetwork::new(
                Mesh2D::new(2, 1),
                SwitchedConfig {
                    rx_queue_capacity: 64,
                    fault: fault.clone(),
                    seed,
                    ..SwitchedConfig::default()
                },
            );
            let mut m = Machine::new(share(net), 2, CmamConfig::default());
            m.register_rpc_handler(n(1), 40, |_, msg| [msg.words[0] + 100, 0, 0, 0]);
            for v in 0..8u32 {
                let reply = m
                    .rpc_call_retrying(n(0), n(1), 40, [v, 0, 0, 0], &crate::RetryPolicy::default())
                    .unwrap();
                assert_eq!(reply[0], v + 100, "seed {seed} call {v}");
            }
        }
    }

    #[test]
    fn classify_poll_maps_outcomes() {
        assert_eq!(classify_poll(PollOutcome::Idle), RpcEvent::Idle);
        assert_eq!(classify_poll(PollOutcome::Handled(40)), RpcEvent::Served(40));
        let reply = Am4Msg { src: n(0), tag: Tags::RPC_REPLY, header: 7, words: [1; 4] };
        assert_eq!(classify_poll(PollOutcome::Unclaimed(reply)), RpcEvent::Reply(7, [1; 4]));
    }
}
