//! A free-list slab arena.
//!
//! Running-op state lives here: insertion hands out a stable `u32` key,
//! removal recycles the slot via a free list, and lookups are a bounds
//! check plus an `Option` discriminant — no hashing, no tree walks, no
//! per-step allocation once the arena has warmed up to the working-set
//! size.

/// Free-list slab; see the module docs.
#[derive(Debug)]
pub struct Slab<T> {
    entries: Vec<Option<T>>,
    free: Vec<u32>,
    len: usize,
}

impl<T> Default for Slab<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> Slab<T> {
    /// An empty slab.
    pub fn new() -> Self {
        Slab { entries: Vec::new(), free: Vec::new(), len: 0 }
    }

    /// Number of occupied slots.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no slots are occupied.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Total slots ever allocated (occupied + free-listed).
    pub fn capacity(&self) -> usize {
        self.entries.len()
    }

    /// Store `value`, reusing a free slot when one exists; returns the
    /// slot key.
    pub fn insert(&mut self, value: T) -> u32 {
        self.len += 1;
        if let Some(k) = self.free.pop() {
            debug_assert!(self.entries[k as usize].is_none());
            self.entries[k as usize] = Some(value);
            k
        } else {
            let k = self.entries.len() as u32;
            self.entries.push(Some(value));
            k
        }
    }

    /// Remove and return the value at `key`.
    ///
    /// # Panics
    /// Panics if the slot is vacant.
    pub fn remove(&mut self, key: u32) -> T {
        let v = self.entries[key as usize].take().expect("slab: remove of vacant slot");
        self.len -= 1;
        self.free.push(key);
        v
    }

    /// Borrow the value at `key`, if occupied.
    pub fn get(&self, key: u32) -> Option<&T> {
        self.entries.get(key as usize).and_then(|e| e.as_ref())
    }

    /// Mutably borrow the value at `key`, if occupied.
    pub fn get_mut(&mut self, key: u32) -> Option<&mut T> {
        self.entries.get_mut(key as usize).and_then(|e| e.as_mut())
    }

    /// Iterate occupied slots as `(key, &value)`.
    pub fn iter(&self) -> impl Iterator<Item = (u32, &T)> {
        self.entries
            .iter()
            .enumerate()
            .filter_map(|(i, e)| e.as_ref().map(|v| (i as u32, v)))
    }
}

impl<T> std::ops::Index<u32> for Slab<T> {
    type Output = T;
    fn index(&self, key: u32) -> &T {
        self.entries[key as usize].as_ref().expect("slab: index of vacant slot")
    }
}

impl<T> std::ops::IndexMut<u32> for Slab<T> {
    fn index_mut(&mut self, key: u32) -> &mut T {
        self.entries[key as usize].as_mut().expect("slab: index of vacant slot")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keys_are_stable_and_slots_recycle() {
        let mut s = Slab::new();
        let a = s.insert("a");
        let b = s.insert("b");
        let c = s.insert("c");
        assert_eq!((a, b, c), (0, 1, 2));
        assert_eq!(s.remove(b), "b");
        assert_eq!(s.len(), 2);
        assert_eq!(s.get(b), None);
        assert_eq!(s[a], "a");
        assert_eq!(s[c], "c");
        // The freed slot is reused; no new capacity.
        let d = s.insert("d");
        assert_eq!(d, b);
        assert_eq!(s.capacity(), 3);
        let keys: Vec<u32> = s.iter().map(|(k, _)| k).collect();
        assert_eq!(keys, vec![0, 1, 2]);
    }

    #[test]
    #[should_panic(expected = "vacant")]
    fn removing_a_vacant_slot_panics() {
        let mut s = Slab::new();
        let k = s.insert(1u8);
        s.remove(k);
        s.remove(k);
    }
}
