//! Scheduler internals: readiness plane, timing wheel, op slab, and the
//! self-profiling harness.
//!
//! The engine ([`crate::Engine`]) owns the protocol semantics; this
//! module owns the machinery that decides *when* each op gets CPU:
//!
//! * [`TimingWheel`] — a hierarchical timer wheel holding op wake
//!   timers, deadlines, watchdogs and park-resume markers, so that
//!   supervision never scans every op and idle time can clock-jump
//!   straight to the next due event.
//! * [`Slab`] — a free-list arena for running-op state: stable `u32`
//!   indices, no per-step `Box`/`BTreeMap` churn on the hot path.
//! * [`SchedProfiler`] / [`SchedCounters`] — cheap timestamps into a
//!   ring buffer (aggregated outside the hot path) plus always-on
//!   counters of steps/quanta/wakes, so the simulator's own overhead is
//!   measured rather than guessed.
//!
//! See `DESIGN.md` §10 for the full methodology.

mod profile;
mod slab;
mod wheel;

pub use profile::{PhaseTotal, SchedCounters, SchedPhase, SchedProfiler};
pub use slab::Slab;
pub use wheel::TimingWheel;

/// Which scheduler the engine runs.
///
/// Both modes produce the identical [`crate::TracedEvent`] sequence and
/// per-feature bills (pinned by the `sched_equivalence` soak); they
/// differ only in how much work the *simulator* does to get there.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum SchedMode {
    /// Readiness-driven scheduling: ops sleep on wake conditions
    /// (packet arrival, timer expiry, dependency release, park-resume)
    /// and are stepped only when a condition fires; supervision rides
    /// the timing wheel; idle time clock-jumps to the next due event.
    #[default]
    EventDriven,
    /// The retained reference stepper: round-robin every running op
    /// each quantum, scan all deadlines/watchdogs, `advance(1)` when
    /// idle. Kept as the equivalence baseline and for benchmarking the
    /// readiness win.
    ReferenceRoundRobin,
}
