//! Self-profiling for the scheduler: where does the *simulator's* time
//! go?
//!
//! The same question the paper asks of messaging layers applies to the
//! thing asking it. [`SchedProfiler`] timestamps the four scheduler
//! phases into a fixed ring buffer — two `Instant` reads per phase per
//! quantum, nothing else on the hot path — and aggregation happens only
//! when the harness calls [`SchedProfiler::flush`] between runs.
//! [`SchedCounters`] are always-on plain integer counters (the bench
//! acceptance metric is `steps`, the number of op `step()` invocations).

/// A scheduler phase whose wall time is sampled.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SchedPhase {
    /// Scanning the run queue for ready ops (sweep overhead minus the
    /// op steps themselves).
    ReadyPop,
    /// Time inside op `step()` calls — the protocol work itself.
    OpStep,
    /// Advancing the timing wheel, harvesting ripe timers, and
    /// absorbing substrate wake sets.
    WheelAdvance,
    /// Advancing the network substrate (`Machine::advance`).
    SubstrateStep,
}

impl SchedPhase {
    /// Every phase, in display order.
    pub const ALL: [SchedPhase; 4] = [
        SchedPhase::ReadyPop,
        SchedPhase::OpStep,
        SchedPhase::WheelAdvance,
        SchedPhase::SubstrateStep,
    ];

    /// Stable snake_case name (used as the `BENCH_results.json` key
    /// component).
    pub fn name(self) -> &'static str {
        match self {
            SchedPhase::ReadyPop => "ready_pop",
            SchedPhase::OpStep => "op_step",
            SchedPhase::WheelAdvance => "wheel_advance",
            SchedPhase::SubstrateStep => "substrate_step",
        }
    }

    fn index(self) -> usize {
        match self {
            SchedPhase::ReadyPop => 0,
            SchedPhase::OpStep => 1,
            SchedPhase::WheelAdvance => 2,
            SchedPhase::SubstrateStep => 3,
        }
    }
}

/// Aggregated samples for one phase.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PhaseTotal {
    /// Number of samples folded in.
    pub samples: u64,
    /// Total nanoseconds across those samples.
    pub total_ns: u64,
}

/// Ring-buffered phase timer; see the module docs.
#[derive(Debug)]
pub struct SchedProfiler {
    ring: Vec<(u8, u64)>,
    head: usize,
    filled: usize,
    dropped: u64,
    totals: [PhaseTotal; 4],
}

impl SchedProfiler {
    /// A profiler whose ring holds `capacity` samples before the oldest
    /// are overwritten (and counted in [`SchedProfiler::dropped`]).
    pub fn new(capacity: usize) -> Self {
        SchedProfiler {
            ring: Vec::with_capacity(capacity.max(1)),
            head: 0,
            filled: 0,
            dropped: 0,
            totals: [PhaseTotal::default(); 4],
        }
    }

    /// Record one `(phase, nanoseconds)` sample. O(1), no allocation
    /// once the ring is full.
    pub fn record(&mut self, phase: SchedPhase, ns: u64) {
        let sample = (phase.index() as u8, ns);
        if self.ring.len() < self.ring.capacity() {
            self.ring.push(sample);
            self.filled += 1;
        } else {
            if self.filled == self.ring.len() {
                self.dropped += 1;
            }
            self.ring[self.head] = sample;
            self.filled = self.ring.len();
        }
        self.head = (self.head + 1) % self.ring.capacity();
    }

    /// Fold the ring's contents into the persistent per-phase totals
    /// and clear it. Call this *outside* the hot path (between pump
    /// batches or after a run).
    pub fn flush(&mut self) {
        for &(p, ns) in self.ring.iter().take(self.filled) {
            let t = &mut self.totals[p as usize];
            t.samples += 1;
            t.total_ns += ns;
        }
        self.ring.clear();
        self.head = 0;
        self.filled = 0;
    }

    /// Per-phase totals accumulated by [`SchedProfiler::flush`],
    /// indexed like [`SchedPhase::ALL`].
    pub fn totals(&self) -> [PhaseTotal; 4] {
        self.totals
    }

    /// Samples lost to ring overwrite before they could be flushed.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }
}

/// Always-on scheduler counters. `steps` is the acceptance metric for
/// the readiness refactor: how many op `step()` invocations were needed
/// to finish the workload.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SchedCounters {
    /// Op `step()` invocations.
    pub steps: u64,
    /// Pump quanta executed.
    pub quanta: u64,
    /// Sweep passes across the run queue.
    pub passes: u64,
    /// Substrate advances issued by the scheduler.
    pub advances: u64,
    /// Advances that jumped more than one cycle.
    pub idle_jumps: u64,
    /// Cycles skipped by those jumps (beyond the single cycle a
    /// reference advance would have made).
    pub jumped_cycles: u64,
    /// Sleeping ops woken by a wheel timer.
    pub timer_wakes: u64,
    /// Sleeping ops woken by a packet arrival at a subscribed node.
    pub packet_wakes: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_overwrites_oldest_and_flush_aggregates() {
        let mut p = SchedProfiler::new(3);
        p.record(SchedPhase::OpStep, 10);
        p.record(SchedPhase::OpStep, 20);
        p.record(SchedPhase::ReadyPop, 5);
        p.record(SchedPhase::OpStep, 30); // overwrites the 10ns sample
        assert_eq!(p.dropped(), 1);
        p.flush();
        let t = p.totals();
        assert_eq!(t[SchedPhase::OpStep.index()], PhaseTotal { samples: 2, total_ns: 50 });
        assert_eq!(t[SchedPhase::ReadyPop.index()], PhaseTotal { samples: 1, total_ns: 5 });
        // Flush is idempotent on an empty ring.
        p.flush();
        assert_eq!(p.totals()[SchedPhase::OpStep.index()].samples, 2);
    }
}
