//! A hierarchical timing wheel.
//!
//! Four levels of 64 slots each cover dues up to `64^4` (~16.7M) cycles
//! out; anything farther sits on an overflow list until it comes into
//! range. Entries are placed at the shallowest level whose span covers
//! their distance from *now* and cascade toward level 0 as time
//! advances. Each slot tracks the minimum due it holds, so
//! [`TimingWheel::next_due`] is exact (not a slot-granular lower
//! bound) — the engine relies on that to clock-jump idle time without
//! overshooting an event.
//!
//! Entries carry a monotonically increasing insertion sequence;
//! [`TimingWheel::take_ripe`] yields due entries sorted by
//! `(due, seq)`, so same-cycle expiries fire in insertion order.

const LEVELS: usize = 4;
const SLOT_BITS: u32 = 6;
const SLOTS: usize = 1 << SLOT_BITS;
const SLOT_MASK: u64 = (SLOTS as u64) - 1;

#[derive(Debug)]
struct Entry<T> {
    due: u64,
    seq: u64,
    item: T,
}

/// A ripe (due) timer: `(due, insertion_seq, item)`.
pub type Ripe<T> = (u64, u64, T);

/// Hierarchical timer wheel; see the module docs.
#[derive(Debug)]
pub struct TimingWheel<T> {
    now: u64,
    next_seq: u64,
    len: usize,
    slots: Vec<Vec<Entry<T>>>,
    /// Minimum due held by each slot (`u64::MAX` when empty).
    slot_min: Vec<u64>,
    /// Per-level occupancy bitmap — bit `s` set iff slot `s` is
    /// non-empty.
    occ: [u64; LEVELS],
    overflow: Vec<Entry<T>>,
    overflow_min: u64,
    ripe: Vec<Entry<T>>,
}

impl<T> Default for TimingWheel<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> TimingWheel<T> {
    /// An empty wheel at time 0.
    pub fn new() -> Self {
        TimingWheel {
            now: 0,
            next_seq: 0,
            len: 0,
            slots: (0..LEVELS * SLOTS).map(|_| Vec::new()).collect(),
            slot_min: vec![u64::MAX; LEVELS * SLOTS],
            occ: [0; LEVELS],
            overflow: Vec::new(),
            overflow_min: u64::MAX,
            ripe: Vec::new(),
        }
    }

    /// The wheel's current time.
    pub fn now(&self) -> u64 {
        self.now
    }

    /// Number of entries held (including already-ripe ones not yet
    /// taken).
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no entries are held at all.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Insert an entry due at absolute time `due`; returns its
    /// insertion sequence (usable with [`TimingWheel::cancel`]).
    /// A due at or before *now* is immediately ripe.
    pub fn insert(&mut self, due: u64, item: T) -> u64 {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.len += 1;
        let e = Entry { due, seq, item };
        if due <= self.now {
            self.ripe.push(e);
        } else {
            self.place(e);
        }
        seq
    }

    fn place(&mut self, e: Entry<T>) {
        let delta = e.due - self.now;
        for l in 0..LEVELS {
            if delta < 1u64 << (SLOT_BITS * (l as u32 + 1)) {
                let s = ((e.due >> (SLOT_BITS * l as u32)) & SLOT_MASK) as usize;
                let idx = l * SLOTS + s;
                self.slot_min[idx] = self.slot_min[idx].min(e.due);
                self.occ[l] |= 1u64 << s;
                self.slots[idx].push(e);
                return;
            }
        }
        self.overflow_min = self.overflow_min.min(e.due);
        self.overflow.push(e);
    }

    /// Advance the wheel to absolute time `t`, cascading entries toward
    /// level 0 and collecting everything with `due <= t` into the ripe
    /// queue. Going backwards is a no-op.
    pub fn advance_to(&mut self, t: u64) {
        if t <= self.now {
            return;
        }
        self.now = t;
        for l in 0..LEVELS {
            let mut occ = self.occ[l];
            while occ != 0 {
                let s = occ.trailing_zeros() as usize;
                occ &= occ - 1;
                let idx = l * SLOTS + s;
                if self.slot_min[idx] > t {
                    continue;
                }
                let entries = std::mem::take(&mut self.slots[idx]);
                self.occ[l] &= !(1u64 << s);
                self.slot_min[idx] = u64::MAX;
                for e in entries {
                    if e.due <= t {
                        self.ripe.push(e);
                    } else {
                        // Still in the future but its old slot has
                        // expired: cascade to the level its (shrunken)
                        // distance now fits.
                        self.place(e);
                    }
                }
            }
        }
        if self.overflow_min != u64::MAX
            && self.overflow_min.saturating_sub(t) < (1u64 << (SLOT_BITS * LEVELS as u32))
        {
            let overflow = std::mem::take(&mut self.overflow);
            self.overflow_min = u64::MAX;
            for e in overflow {
                if e.due <= t {
                    self.ripe.push(e);
                } else if e.due - t < (1u64 << (SLOT_BITS * LEVELS as u32)) {
                    self.place(e);
                } else {
                    self.overflow_min = self.overflow_min.min(e.due);
                    self.overflow.push(e);
                }
            }
        }
    }

    /// Drain all ripe entries, sorted by `(due, insertion seq)`.
    pub fn take_ripe(&mut self) -> Vec<Ripe<T>> {
        if self.ripe.is_empty() {
            return Vec::new();
        }
        self.ripe.sort_by_key(|e| (e.due, e.seq));
        self.len -= self.ripe.len();
        self.ripe.drain(..).map(|e| (e.due, e.seq, e.item)).collect()
    }

    /// The earliest due among all held entries (ripe entries report
    /// *now*). `None` when empty. Exact, thanks to per-slot minimums.
    pub fn next_due(&self) -> Option<u64> {
        if !self.ripe.is_empty() {
            return Some(self.now);
        }
        let mut best = self.overflow_min;
        for l in 0..LEVELS {
            let mut occ = self.occ[l];
            while occ != 0 {
                let s = occ.trailing_zeros() as usize;
                occ &= occ - 1;
                best = best.min(self.slot_min[l * SLOTS + s]);
            }
        }
        (best != u64::MAX).then_some(best)
    }

    /// Remove the entry with insertion sequence `seq`, wherever it
    /// lives (slot, overflow, or already ripe). Linear scan — meant for
    /// tests and diagnostics; the engine invalidates entries lazily
    /// instead.
    pub fn cancel(&mut self, seq: u64) -> Option<T> {
        if let Some(pos) = self.ripe.iter().position(|e| e.seq == seq) {
            self.len -= 1;
            return Some(self.ripe.swap_remove(pos).item);
        }
        if let Some(pos) = self.overflow.iter().position(|e| e.seq == seq) {
            self.len -= 1;
            let e = self.overflow.swap_remove(pos);
            self.overflow_min = self.overflow.iter().map(|e| e.due).min().unwrap_or(u64::MAX);
            return Some(e.item);
        }
        for l in 0..LEVELS {
            let mut occ = self.occ[l];
            while occ != 0 {
                let s = occ.trailing_zeros() as usize;
                occ &= occ - 1;
                let idx = l * SLOTS + s;
                if let Some(pos) = self.slots[idx].iter().position(|e| e.seq == seq) {
                    self.len -= 1;
                    let e = self.slots[idx].swap_remove(pos);
                    self.slot_min[idx] =
                        self.slots[idx].iter().map(|e| e.due).min().unwrap_or(u64::MAX);
                    if self.slots[idx].is_empty() {
                        self.occ[l] &= !(1u64 << s);
                    }
                    return Some(e.item);
                }
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Drive a wheel holding `u32` payloads through a scripted advance
    /// and collect every firing as `(advance_to, due, item)`.
    fn run_script(inserts: &[(u64, u32)], advances: &[u64]) -> Vec<(u64, u64, u32)> {
        let mut w = TimingWheel::new();
        for &(due, item) in inserts {
            w.insert(due, item);
        }
        let mut fired = Vec::new();
        for &t in advances {
            w.advance_to(t);
            for (due, _seq, item) in w.take_ripe() {
                fired.push((t, due, item));
            }
        }
        fired
    }

    #[test]
    fn fires_exactly_at_bucket_boundaries() {
        // One entry per interesting due: slot edges of every level plus
        // the overflow threshold. Each row: (due, expected fire at).
        let table: &[u64] = &[
            1,
            63,         // last level-0 slot
            64,         // first level-1 due
            65,
            4_095,      // last level-1 due
            4_096,      // first level-2 due
            262_143,    // last level-2 due
            262_144,    // first level-3 due
            16_777_215, // last level-3 due
            16_777_216, // overflow
            16_777_217,
        ];
        let inserts: Vec<(u64, u32)> =
            table.iter().enumerate().map(|(i, &d)| (d, i as u32)).collect();
        // Advance in two stages per due: one cycle short (must not
        // fire), then exactly on the due (must fire).
        let mut w = TimingWheel::new();
        for &(due, item) in &inserts {
            w.insert(due, item);
        }
        for (i, &due) in table.iter().enumerate() {
            w.advance_to(due - 1);
            let early: Vec<_> = w.take_ripe();
            assert!(early.is_empty(), "due {due} fired early: {early:?}");
            assert_eq!(w.next_due(), Some(due), "next_due must be exact before {due}");
            w.advance_to(due);
            let fired = w.take_ripe();
            assert_eq!(fired.len(), 1, "due {due} must fire exactly once");
            assert_eq!(fired[0].0, due);
            assert_eq!(fired[0].2, i as u32);
        }
        assert!(w.is_empty());
    }

    #[test]
    fn cascade_preserves_due_across_level_boundaries() {
        // Entry inserted at a high level must still fire at its exact
        // due after cascading down, for a table of (insert_at, due,
        // checkpoints) rows.
        let table: &[(u64, u64, &[u64])] = &[
            (0, 67, &[64, 66]),            // level 1 -> level 0 at t=64
            (0, 4_100, &[4_096, 4_099]),   // level 2 -> down
            (0, 262_200, &[262_144]),      // level 3 -> down
            (10, 70, &[64, 69]),           // non-zero start
            (0, 20_000_000, &[16_777_216]) // overflow -> wheel
        ];
        for &(start, due, checkpoints) in table {
            let mut w = TimingWheel::new();
            w.advance_to(start);
            w.insert(due, 7u32);
            for &cp in checkpoints {
                w.advance_to(cp);
                assert!(w.take_ripe().is_empty(), "due {due} fired early at {cp}");
                assert_eq!(w.next_due(), Some(due), "exact next_due after cascade at {cp}");
            }
            w.advance_to(due);
            let fired = w.take_ripe();
            assert_eq!(fired.len(), 1);
            assert_eq!(fired[0].0, due);
        }
    }

    #[test]
    fn same_cycle_expiries_fire_in_insertion_order() {
        // Mixed levels, same due; plus an earlier due inserted later.
        let fired = run_script(
            &[(100, 0), (100, 1), (50, 2), (100, 3)],
            &[49, 50, 99, 100],
        );
        assert_eq!(
            fired,
            vec![(50, 50, 2), (100, 100, 0), (100, 100, 1), (100, 100, 3)]
        );
    }

    #[test]
    fn cancellation_removes_entries_wherever_they_live() {
        let mut w = TimingWheel::new();
        let near = w.insert(5, 0u32); // level 0
        let mid = w.insert(500, 1); // level 1
        let far = w.insert(50_000_000, 2); // overflow
        w.advance_to(3);
        let ripe = w.insert(2, 3); // ripe on arrival
        assert_eq!(w.len(), 4);
        assert_eq!(w.cancel(mid), Some(1));
        assert_eq!(w.cancel(ripe), Some(3));
        assert_eq!(w.cancel(far), Some(2));
        assert_eq!(w.cancel(far), None, "double-cancel must miss");
        assert_eq!(w.len(), 1);
        w.advance_to(60_000_000);
        let fired = w.take_ripe();
        assert_eq!(fired.len(), 1, "only the uncancelled entry fires");
        assert_eq!(fired[0].1, near);
        assert!(w.is_empty());
    }

    #[test]
    fn far_future_and_idle_jumps() {
        let mut w = TimingWheel::new();
        w.insert(1u64 << 40, 9u32);
        assert_eq!(w.next_due(), Some(1u64 << 40), "overflow due is exact");
        // A giant single jump straight past the due fires it once.
        w.advance_to((1u64 << 40) + 5);
        let fired = w.take_ripe();
        assert_eq!(fired.len(), 1);
        assert_eq!(fired[0].0, 1u64 << 40);
        assert_eq!(w.next_due(), None);
    }

    #[test]
    fn ripe_on_insert_and_backwards_advance_is_noop() {
        let mut w = TimingWheel::new();
        w.advance_to(100);
        w.insert(100, 1u32); // due == now -> ripe
        w.insert(40, 2); // already past -> ripe
        assert_eq!(w.next_due(), Some(100));
        w.advance_to(50); // backwards: ignored
        assert_eq!(w.now(), 100);
        let fired = w.take_ripe();
        assert_eq!(fired.len(), 2);
        // Sorted by (due, seq): the past-due entry first.
        assert_eq!(fired[0].2, 2);
        assert_eq!(fired[1].2, 1);
    }
}
