//! Register-instruction annotation constants, calibrated to the paper.
//!
//! Device (`dev`) and memory (`mem`) instructions are recorded by the NI
//! and memory models as a side effect of doing the real work; register
//! (`reg`) instructions have no observable side effect in the simulation
//! and are annotated explicitly at the points the measured CMAM code
//! paths execute them. The constants here encode those annotations; each
//! is traceable to a row of Table 1 or a cell of Table 3 (the full
//! derivation is in `DESIGN.md §3`).
//!
//! Naming: `*_CALL` are call/return overhead, `*_SETUP_REG` accompany
//! the NI-setup store, `*_STATUS_REG` accompany the status loads,
//! `*_CTRL` are branches/loop tests.

/// Single-packet (`CMAM_4`) send — Table 1 source column, 20 total:
/// call/return 3, NI setup 5 (4 reg + 1 dev), write to NI 2 (dev),
/// check status 7 (5 reg + 2 dev), control flow 3.
pub(crate) mod am4_send {
    pub const CALL: u64 = 3;
    pub const SETUP_REG: u64 = 4;
    pub const STATUS_REG: u64 = 5;
    pub const CTRL: u64 = 3;
}

/// Single-packet receive — Table 1 destination column, 27 total:
/// call/return 10, read from NI 3 (dev), check status 12 (10 reg +
/// 2 dev: receive poll + latch/tag load), control flow 2.
pub(crate) mod am4_recv {
    pub const CALL: u64 = 10;
    pub const STATUS_REG: u64 = 10;
    pub const CTRL: u64 = 2;
}

/// Control-packet send (request / reply / acknowledgement / stream data):
/// 14 reg + 1 mem + (n/2 + 3) dev. The `reg` side is call 3 + setup 4 +
/// status 4 + control 3; the single `mem` is the protocol-state access.
/// This is the 20-instruction shape of Table 3's per-packet
/// acknowledgement send (14 reg, 1 mem, 5 dev at n = 4).
pub(crate) mod ctl_send {
    pub const CALL: u64 = 3;
    pub const SETUP_REG: u64 = 4;
    pub const STATUS_REG: u64 = 4;
    pub const CTRL: u64 = 3;
    pub const STATE_MEM: u64 = 1;
}

/// Per-packet data send inside the `xfer` loop: 15 reg + (n/2) mem +
/// (n/2 + 3) dev (Table 3 finite-sequence base: reg 15/packet). The
/// call overhead is amortized (inlined); instead the loop pays loop
/// control 3 + pointer advance 4 + setup 4 + status 4.
pub(crate) mod xfer_send {
    pub const LOOP_CTRL: u64 = 3;
    pub const PTR_ADVANCE: u64 = 4;
    pub const SETUP_REG: u64 = 4;
    pub const STATUS_REG: u64 = 4;
    /// Per-message prologue: 2 reg + 1 mem (Table 3 base constants +2
    /// reg, +1 mem at the source).
    pub const PROLOGUE_REG: u64 = 2;
    pub const PROLOGUE_MEM: u64 = 1;
}

/// Per-packet data receive inside the `xfer` drain loop: 12 reg +
/// (n/2) mem + (n/2 + 2) dev per packet, plus an 18-instruction
/// per-message epilogue/prologue of 14 reg + 3 mem + 1 dev
/// (Table 3 finite-sequence destination base: reg 12p + 14,
/// mem 2p + 3, dev 17 at p = 4).
pub(crate) mod xfer_recv {
    pub const PER_PACKET_REG: u64 = 12;
    pub const ENTRY_CALL: u64 = 10;
    pub const ENTRY_CTRL: u64 = 2;
    pub const ENTRY_HANDLER: u64 = 2;
    /// Segment-state loads at burst entry (2) + writeback at end (1).
    pub const ENTRY_STATE_MEM: u64 = 2;
    pub const EXIT_STATE_MEM: u64 = 1;
}

/// Buffer management (finite sequence): segment association at the
/// destination after the request arrives, and disassociation after the
/// last packet. Calibrated so destination buffer management totals
/// 79 reg + 12 mem + 10 dev (Table 3): request receive contributes
/// 22 reg + 5 dev, reply send 14 reg + 1 mem + 5 dev, leaving
/// 43 reg + 11 mem for associate + disassociate.
pub(crate) mod segment {
    pub const ASSOCIATE_REG: u64 = 28;
    pub const ASSOCIATE_MEM: u64 = 7;
    pub const DISASSOCIATE_REG: u64 = 15;
    pub const DISASSOCIATE_MEM: u64 = 4;
}

/// In-order delivery costs for the finite-sequence protocol: the source
/// increments and stages the buffer offset (2 reg/packet); the
/// destination extracts it and decrements the expected-packet count
/// (3 reg/packet + 1 final check) — Table 3 shows these as pure `reg`.
pub(crate) mod xfer_order {
    pub const SRC_PER_PACKET: u64 = 2;
    pub const DST_PER_PACKET: u64 = 3;
    pub const DST_FINAL: u64 = 1;
}

/// Stream (indefinite-sequence) per-packet costs beyond the base send:
/// sequence-number generation is 2 reg + 3 mem (the channel sequence
/// state lives in memory); source buffering for retransmission is
/// 4 reg + (n/2) mem; acknowledgement processing at the source is
/// 18 reg + 5 dev per acknowledgement. Together (at n = 4, one ack per
/// packet) these are Table 3's in-order 2 reg + 3 mem and fault-
/// tolerance 22 reg + 2 mem + 5 dev per packet.
pub(crate) mod stream_src {
    pub const SEQ_REG: u64 = 2;
    pub const BUF_REG: u64 = 4;
    pub const ACK_RECV_REG: u64 = 18;
}

/// Stream per-packet receive costs: base dispatch is 10 reg/packet plus
/// a 12 reg + 1 dev poll entry per burst; the in-sequence check is
/// 6 reg; an out-of-order packet pays 29 reg + (2n + 15) mem across
/// buffering (word-granularity copy-in + sorted insert) and draining
/// (copy-out + unlink); a duplicate is discarded after the 6-reg check
/// plus 2 reg. These reproduce Table 3's destination in-order average of
/// 29/packet with half the packets out of order at n = 4.
pub(crate) mod stream_dst {
    pub const PER_PACKET_REG: u64 = 10;
    pub const ENTRY_CALL: u64 = 10;
    pub const ENTRY_CTRL: u64 = 2;
    pub const INSEQ_REG: u64 = 6;
    pub const DUP_EXTRA_REG: u64 = 2;
    /// Out-of-order buffering: registers at buffer time…
    pub const OOO_BUFFER_REG: u64 = 17;
    /// …and at drain time (17 + 12 = 29 total).
    pub const OOO_DRAIN_REG: u64 = 12;
    /// Memory bookkeeping beyond the 2·(n+1) word copies: sorted insert
    /// 7, unlink 6.
    pub const OOO_INSERT_MEM: u64 = 7;
    pub const OOO_UNLINK_MEM: u64 = 6;
}

/// Recovery-path costs of the fault-tolerant protocol variants
/// (`xfer_reliable`, retried RPC). Every constant here is charged to
/// `Feature::FaultTol` and only ever on a faulted execution path: a
/// clean run executes none of these, which is what the
/// zero-cost-when-clean tests pin down.
pub(crate) mod recovery {
    /// Discard a stray packet (wrong tag / stale segment) at either
    /// endpoint: tag compare + branch.
    pub const STRAY_DISCARD_REG: u64 = 2;
    /// Detect and discard a duplicate data packet: bitmap index compute,
    /// test, branch, discard.
    pub const DUP_DATA_REG: u64 = 4;
    /// Scan the receive bitmap for the missing-packet set before sending
    /// a NACK.
    pub const GAP_SCAN_REG: u64 = 6;
    /// Persist the NACK bookkeeping (last-nacked watermark).
    pub const NACK_STATE_MEM: u64 = 1;
    /// Re-arm the send loop for a selective retransmission: reload
    /// pointers and counts for the missing range.
    pub const RETRANSMIT_SETUP_REG: u64 = 4;
    /// Duplicate-request lookup at the RPC callee: hash the
    /// (caller, call-id) key and probe the reply cache.
    pub const RPC_DEDUP_REG: u64 = 6;
    /// Session re-establishment after a peer crash-restart: tear down
    /// the dead session's bookkeeping and re-arm the retry state
    /// (register work: compare restart counters, bump the epoch,
    /// reset cursors).
    pub const SESSION_RESTART_REG: u64 = 8;
    /// Session re-establishment memory traffic: drop the stale segment
    /// table entry and store the fresh epoch.
    pub const SESSION_RESTART_MEM: u64 = 2;
    /// Reclaim one dead reliable-transfer session at the receiver
    /// (epoch-TTL sweep or replace-on-new-epoch): age/epoch compare,
    /// table probe, branch, unlink.
    pub const SESSION_GC_REG: u64 = 5;
    /// Session reclaim memory traffic: delete the session-table entry
    /// and its segment shadow state.
    pub const SESSION_GC_MEM: u64 = 2;
    /// Reclaim one expired cached RPC reply at the callee: age compare,
    /// cache probe, branch.
    pub const REPLY_GC_REG: u64 = 3;
    /// Reply reclaim memory traffic: delete the reply-cache entry.
    pub const REPLY_GC_MEM: u64 = 1;
}

/// High-level (CR substrate) finite-sequence receive: the specialized
/// last-packet handler makes the per-message overhead 4 reg + 1 mem +
/// 1 dev instead of CMAM's 14 reg + 3 mem + 1 dev; buffer management is
/// a table insertion of 6 reg + 2 mem (§4.1).
pub(crate) mod hl_xfer {
    pub const ENTRY_REG: u64 = 4;
    pub const ENTRY_STATE_MEM: u64 = 1;
    pub const BUFMGMT_REG: u64 = 6;
    pub const BUFMGMT_MEM: u64 = 2;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn am4_shapes_match_table1_totals() {
        // Source: 3 + (4 reg + 1 dev) + 2 dev + (5 reg + 2 dev) + 3 = 20.
        let src = am4_send::CALL + am4_send::SETUP_REG + 1 + 2 + am4_send::STATUS_REG + 2 + am4_send::CTRL;
        assert_eq!(src, 20);
        // Destination: 10 + (10 reg + 2 dev) + 3 dev + 2 = 27.
        let dst = am4_recv::CALL + am4_recv::STATUS_REG + 2 + 3 + am4_recv::CTRL;
        assert_eq!(dst, 27);
    }

    #[test]
    fn ctl_send_is_twenty_at_four_words() {
        let reg = ctl_send::CALL + ctl_send::SETUP_REG + ctl_send::STATUS_REG + ctl_send::CTRL;
        assert_eq!(reg, 14);
        assert_eq!(reg + ctl_send::STATE_MEM + 5, 20); // dev = n/2 + 3 = 5
    }

    #[test]
    fn xfer_send_per_packet_is_fifteen_reg() {
        let reg = xfer_send::LOOP_CTRL + xfer_send::PTR_ADVANCE + xfer_send::SETUP_REG + xfer_send::STATUS_REG;
        assert_eq!(reg, 15);
    }

    #[test]
    fn xfer_recv_entry_is_fourteen_reg() {
        assert_eq!(
            xfer_recv::ENTRY_CALL + xfer_recv::ENTRY_CTRL + xfer_recv::ENTRY_HANDLER,
            14
        );
        assert_eq!(xfer_recv::ENTRY_STATE_MEM + xfer_recv::EXIT_STATE_MEM, 3);
    }

    #[test]
    fn segment_constants_close_the_table3_budget() {
        // 22 (request recv reg) + 14 (reply send reg) + associate +
        // disassociate = 79 reg; 1 (reply send mem) + associate +
        // disassociate = 12 mem.
        assert_eq!(22 + 14 + segment::ASSOCIATE_REG + segment::DISASSOCIATE_REG, 79);
        assert_eq!(1 + segment::ASSOCIATE_MEM + segment::DISASSOCIATE_MEM, 12);
    }

    #[test]
    fn stream_ooo_split_reconstructs_29_reg() {
        assert_eq!(stream_dst::OOO_BUFFER_REG + stream_dst::OOO_DRAIN_REG, 29);
        // mem at n = 4: copies 2·(4+1) = 10, plus insert 7 + unlink 6 = 23.
        assert_eq!(10 + stream_dst::OOO_INSERT_MEM + stream_dst::OOO_UNLINK_MEM, 23);
    }

    #[test]
    fn stream_fault_tolerance_totals_match_table3() {
        // Source: buffering 4 reg + 2 mem, ack receive 18 reg + 5 dev
        // => 22 reg + 2 mem + 5 dev = 29 per packet at n = 4.
        assert_eq!(stream_src::BUF_REG + stream_src::ACK_RECV_REG, 22);
    }
}
