//! DMA-assisted transfers — the "improved network interfaces and DMA
//! hardware" discussion of the paper's §5.
//!
//! With a DMA engine the source CPU stores one descriptor per packet
//! instead of touching every payload word, shrinking the *base* cost.
//! The paper's point is the paradox that follows: the protocol overheads
//! (buffer management, in-order delivery, fault tolerance) are untouched
//! by DMA, so their *relative* weight grows — "reductions in the basic
//! cost will increase the importance of reducing software protocol
//! overhead."

use timego_cost::analytic::{cmam_finite, MsgShape, ProtocolCost};
use timego_cost::{Endpoint, Feature, FeatureCost};
use timego_netsim::{DeliveryScript, NodeId, ScriptedNetwork};
use timego_ni::share;

use crate::error::ProtocolError;
use crate::machine::{CmamConfig, Machine};
use crate::measure;
use crate::xfer::{PayloadEngine, XferOutcome};

impl Machine {
    /// Run the finite-sequence transfer protocol with DMA payload
    /// injection at the source (see [`Machine::xfer`] for the protocol
    /// itself; only the per-packet data movement differs).
    ///
    /// # Errors
    ///
    /// Same as [`Machine::xfer`].
    ///
    /// # Panics
    ///
    /// Panics if `src` or `dst` is out of range or `src == dst`.
    pub fn xfer_dma(&mut self, src: NodeId, dst: NodeId, data: &[u32]) -> Result<XferOutcome, ProtocolError> {
        self.xfer_with(src, dst, data, PayloadEngine::Dma)
    }
}

/// The closed-form cost of a DMA-assisted finite-sequence transfer:
/// identical to [`cmam_finite`] except the source base cost, which
/// drops to `8 reg + 4 dev` per packet (envelope, descriptor, commit
/// and status accesses) with no per-word instructions — independent of
/// the packet size `n`.
pub fn cmam_finite_dma(shape: MsgShape) -> ProtocolCost {
    let mut c = cmam_finite(shape);
    let p = shape.packets();
    c.set(
        Endpoint::Source,
        Feature::Base,
        FeatureCost::new(8 * p + 2, 1, 4 * p),
    );
    c
}

/// Measure a DMA-assisted finite-sequence transfer under the paper's
/// conditions, verifying delivery.
///
/// # Panics
///
/// Panics if the transfer fails or delivers wrong data.
pub fn measure_xfer_dma(words: usize, packet_words: usize) -> (ProtocolCost, XferOutcome) {
    let mut m = Machine::new(
        share(ScriptedNetwork::new(2, DeliveryScript::InOrder)),
        2,
        CmamConfig { packet_words, ..CmamConfig::default() },
    );
    let data: Vec<u32> = (0..words as u32).map(|i| i.rotate_left(7) ^ 0xD1A) .collect();
    m.reset_costs();
    let outcome = m
        .xfer_dma(NodeId::new(0), NodeId::new(1), &data)
        .expect("transfer completes");
    assert_eq!(
        m.read_buffer(NodeId::new(1), outcome.dst_buffer, words),
        data,
        "transferred data must match"
    );
    (
        measure::to_protocol_cost(
            &m.cpu(NodeId::new(0)).snapshot(),
            &m.cpu(NodeId::new(1)).snapshot(),
        ),
        outcome,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dma_transfer_delivers_correct_data() {
        let (_, out) = measure_xfer_dma(1000, 4);
        assert_eq!(out.packets, 250);
    }

    #[test]
    fn dma_matches_its_closed_form() {
        for (words, n) in [(16u64, 4usize), (1024, 4), (1024, 32)] {
            let (measured, _) = measure_xfer_dma(words as usize, n);
            let model = cmam_finite_dma(MsgShape::for_message(words, n as u64).unwrap());
            assert_eq!(measured, model, "words={words} n={n}");
        }
    }

    #[test]
    fn dma_cuts_base_cost_but_not_overhead() {
        let (pio, _) = measure::measure_xfer(1024, 4);
        let (dma, _) = measure_xfer_dma(1024, 4);
        let (dma_base, pio_base) = (
            dma.get(Endpoint::Source, Feature::Base).total(),
            pio.get(Endpoint::Source, Feature::Base).total(),
        );
        assert!(
            dma_base * 10 < pio_base * 6,
            "DMA cuts the source base cost substantially ({dma_base} vs {pio_base})"
        );
        assert_eq!(dma.overhead_total(), pio.overhead_total(), "overheads untouched");
        // …so the overhead *fraction* grows: the paper's §5 paradox.
        assert!(dma.overhead_fraction() > pio.overhead_fraction());
    }

    #[test]
    fn dma_destination_cost_is_unchanged() {
        let (pio, _) = measure::measure_xfer(256, 4);
        let (dma, _) = measure_xfer_dma(256, 4);
        assert_eq!(
            dma.endpoint_total(Endpoint::Destination),
            pio.endpoint_total(Endpoint::Destination)
        );
    }
}
