//! The simulated parallel machine: nodes (NI + memory + cost recorder)
//! over a shared network substrate, plus the single-packet active-message
//! layer.

use std::collections::{HashMap, HashSet};

use timego_cost::{CostHandle, Feature, Fine};
use timego_netsim::{NodeId, RxMeta};
use timego_ni::{Addr, Memory, NiPort, SharedNetwork};

use crate::am::{Am4Msg, PollOutcome};
use crate::costs::{am4_recv, am4_send, ctl_send, recovery};
use crate::error::ProtocolError;
use crate::stream::StreamState;

/// Hardware message tags. Tags below [`Tags::USER_BASE`] are reserved
/// for the built-in protocols; user active messages use
/// [`Tags::USER_BASE`] and above.
#[derive(Debug, Clone, Copy)]
pub struct Tags;

impl Tags {
    /// Finite-sequence transfer: segment allocation request.
    pub const XFER_REQ: u8 = 1;
    /// Finite-sequence transfer: allocation reply carrying the segment id.
    pub const XFER_REPLY: u8 = 2;
    /// Finite-sequence transfer: data packet (header = buffer offset).
    pub const XFER_DATA: u8 = 3;
    /// Finite-sequence transfer: final end-to-end acknowledgement.
    pub const XFER_ACK: u8 = 4;
    /// Indefinite-sequence stream: data packet (header = sequence number).
    pub const STREAM_DATA: u8 = 5;
    /// Indefinite-sequence stream: acknowledgement (header = sequence number).
    pub const STREAM_ACK: u8 = 6;
    /// High-level-network finite transfer: data packet.
    pub const HL_DATA: u8 = 7;
    /// High-level-network stream: data packet.
    pub const HL_STREAM: u8 = 8;
    /// Reliable finite-sequence transfer: selective retransmission
    /// request (header = index of the first missing packet, payload =
    /// missing-packet bitmap).
    pub const XFER_NACK: u8 = 9;
    /// Reliable finite-sequence transfer: acknowledgement probe (the
    /// source suspects the final ack was lost and asks for a resend).
    pub const XFER_PROBE: u8 = 10;
    /// RPC reply packets (highest tag, so a
    /// [`DualNetwork`](timego_netsim::DualNetwork) with this threshold
    /// routes every reply onto its second network — footnote 6).
    pub const RPC_REPLY: u8 = 255;
    /// First tag available for user handlers.
    pub const USER_BASE: u8 = 16;
}

/// Configuration of the messaging layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CmamConfig {
    /// Payload words per hardware packet (`n`; even, ≥ 2). The CM-5
    /// value is 4.
    pub packet_words: usize,
    /// Node memory capacity in words.
    pub mem_words: usize,
    /// Upper bound on cycles any protocol phase will wait for a packet
    /// before reporting [`ProtocolError::Timeout`].
    pub max_wait_cycles: u64,
    /// Receiver-side garbage-collection TTL in cycles: sessions and
    /// cached RPC replies older than this — and not owned by a live
    /// operation — are reclaimed by the engine's epoch-TTL sweep
    /// (billed to `Feature::FaultTol` at the receiver). The default
    /// equals `max_wait_cycles`, comfortably past every protocol's own
    /// retry envelope, so nothing live is ever collected.
    pub gc_ttl_cycles: u64,
}

impl Default for CmamConfig {
    fn default() -> Self {
        CmamConfig {
            packet_words: 4,
            mem_words: 1 << 20,
            max_wait_cycles: 1 << 20,
            gc_ttl_cycles: 1 << 20,
        }
    }
}

pub(crate) type Handler = Box<dyn FnMut(&mut Memory, Am4Msg)>;
pub(crate) type RpcHandler = Box<dyn FnMut(&mut Memory, Am4Msg) -> [u32; 4]>;

/// One processing node: its NI port, memory, cost recorder, and
/// registered active-message handlers.
pub(crate) struct Node {
    pub(crate) ni: NiPort,
    pub(crate) mem: Memory,
    pub(crate) cpu: CostHandle,
    handlers: HashMap<u8, Handler>,
    pub(crate) rpc_handlers: HashMap<u8, RpcHandler>,
}

impl Node {
    /// Send a 4-word control packet (request/reply/ack/stream data head):
    /// the 20-instruction shape of the paper's control packets
    /// (14 reg + 1 mem + 5 dev at 4 payload words). Returns `false` on
    /// backpressure — the caller must re-issue (paying again), exactly
    /// as CM-5 software re-stores a refused packet.
    pub(crate) fn send_ctl(&mut self, dst: NodeId, tag: u8, header: u32, words: [u32; 4]) -> bool {
        self.cpu.call(ctl_send::CALL);
        self.cpu.reg(Fine::NiSetup, ctl_send::SETUP_REG);
        self.cpu.mem_load(ctl_send::STATE_MEM);
        self.ni.stage_envelope(dst, tag, header);
        self.ni.push_payload2(words[0], words[1]);
        self.ni.push_payload2(words[2], words[3]);
        self.cpu.reg(Fine::CheckStatus, ctl_send::STATUS_REG);
        self.cpu.ctrl(ctl_send::CTRL);
        self.ni.commit_send() && {
            self.ni.load_send_status();
            true
        }
    }

    /// Wait until a packet is pending, polling the receive-status
    /// register (1 `dev` per probe — exactly one on an idle, instant
    /// network, the paper's favorable path).
    pub(crate) fn wait_rx(&mut self, max_cycles: u64, what: &'static str) -> Result<(), ProtocolError> {
        let mut waited = 0;
        while !self.ni.poll_status() {
            if waited >= max_cycles {
                return Err(ProtocolError::timeout(what, waited));
            }
            self.ni.advance(1);
            waited += 1;
        }
        Ok(())
    }

    /// Receive one 4-word control packet: the 27-instruction shape
    /// (22 reg + 5 dev) of the paper's acknowledgement/handshake
    /// receives. Assumes [`wait_rx`](Node::wait_rx) said a packet is
    /// pending.
    pub(crate) fn recv_ctl(&mut self) -> Option<(NodeId, u8, u32, [u32; 4])> {
        self.cpu.call(am4_recv::CALL);
        self.cpu.reg(Fine::CheckStatus, am4_recv::STATUS_REG);
        self.cpu.ctrl(am4_recv::CTRL);
        let (src, tag) = self.ni.latch_rx()?;
        let header = self.ni.read_header();
        let (w0, w1) = self.ni.read_payload2();
        let (w2, w3) = self.ni.read_payload2();
        Some((src, tag, header, [w0, w1, w2, w3]))
    }

    /// Receive one control packet that a cost-free peek has already
    /// shown to be pending: one favorable-path status probe plus the
    /// 26-instruction receive — exactly what a successful
    /// [`wait_rx`](Node::wait_rx) + [`recv_ctl`](Node::recv_ctl) costs.
    pub(crate) fn recv_ctl_now(&mut self) -> (NodeId, u8, u32, [u32; 4]) {
        let ok = self.ni.poll_status();
        debug_assert!(ok, "recv_ctl_now requires a gated (peeked) packet");
        self.recv_ctl().expect("gated receive")
    }

    /// Temporarily remove a user handler for dispatch (the handler gets
    /// `&mut Memory`, which aliases `self`, so it cannot stay in place).
    pub(crate) fn handlers_take(&mut self, tag: u8) -> Option<Handler> {
        self.handlers.remove(&tag)
    }

    /// Restore a handler after dispatch.
    pub(crate) fn handlers_put(&mut self, tag: u8, handler: Handler) {
        self.handlers.insert(tag, handler);
    }
}

/// Receiver-side bookkeeping for one reliable-transfer session: which
/// epoch the open segment belongs to, plus the segment id and buffer it
/// allocated. This is *shadow state* mirroring what the
/// instruction-charged segment registers hold, so a crash-restart can
/// erase it (modeling the state loss) without touching the cost model.
#[derive(Debug, Clone, Copy)]
pub(crate) struct SessionEntry {
    /// The session epoch the segment was allocated under.
    pub(crate) epoch: u32,
    /// The allocated segment id (what `XFER_REPLY` carries back).
    pub(crate) seg: u32,
    /// The destination buffer backing the segment.
    pub(crate) buffer: Addr,
    /// Substrate clock when the session opened — what the epoch-TTL
    /// garbage sweep ages against.
    pub(crate) opened_at: u64,
}

/// One cached RPC reply at a callee, stamped with the substrate clock
/// so the epoch-TTL sweep can age it out once no live caller can still
/// retransmit the request.
#[derive(Debug, Clone, Copy)]
pub(crate) struct ReplyEntry {
    /// The reply words the handler produced.
    pub(crate) words: [u32; 4],
    /// Substrate clock when the reply was cached.
    pub(crate) cached_at: u64,
}

/// The simulated machine: `n` nodes over one shared network substrate.
///
/// All protocol entry points live here because the drivers orchestrate
/// both endpoints of a transfer; per-node costs are nevertheless
/// recorded separately (see [`Machine::cpu`]).
///
/// Any [`Network`](timego_netsim::Network) substrate plugs in — the
/// parallel sharded one included, since it hides its worker pool behind
/// `advance`:
///
/// ```
/// use timego_am::{CmamConfig, Machine};
/// use timego_netsim::{NodeId, ShardedConfig, ShardedNetwork};
/// use timego_ni::share;
///
/// // 16 nodes over a 4-shard substrate stepped by 2 worker threads;
/// // the protocol layers can't tell it from a flat network (and its
/// // results don't depend on the thread count).
/// let net = ShardedNetwork::new(16, ShardedConfig {
///     shards: 4,
///     threads: 2,
///     ..ShardedConfig::default()
/// });
/// let mut m = Machine::new(share(net), 16, CmamConfig::default());
/// let data: Vec<u32> = (0..40).collect();
/// let outcome = m.xfer(NodeId::new(1), NodeId::new(9), &data).unwrap();
/// assert!(outcome.packets > 0);
/// ```
pub struct Machine {
    pub(crate) net: SharedNetwork,
    pub(crate) nodes: Vec<Node>,
    pub(crate) cfg: CmamConfig,
    pub(crate) streams: Vec<StreamState>,
    pub(crate) next_call_id: u64,
    /// Replies already computed per (callee, caller, call id), kept by
    /// the callee so a retransmitted request is answered from cache
    /// instead of re-running the handler (exactly-once execution under
    /// retry). Keyed by callee so a crash-restart can erase exactly the
    /// restarted node's cache.
    pub(crate) rpc_replies: HashMap<(NodeId, NodeId, u32), ReplyEntry>,
    /// Monotonic per-ordered-pair session epoch counters for reliable
    /// transfers. Epochs survive restarts (model them as
    /// incarnation-qualified counters) so a post-restart session can
    /// never collide with a pre-restart one.
    pub(crate) session_epochs: HashMap<(NodeId, NodeId), u32>,
    /// Open reliable-transfer sessions at each receiver, keyed by
    /// (receiver, sender). Erased wholesale for a node when it
    /// crash-restarts.
    pub(crate) sessions: HashMap<(NodeId, NodeId), SessionEntry>,
    /// Per-node restart counts already absorbed by
    /// [`Machine::observe_restarts`] (indexed by node).
    pub(crate) restart_seen: Vec<u32>,
    /// Last [`Network::restarts_hint`] value absorbed — the O(1) change
    /// detector that lets `observe_restarts` skip the per-node scan on
    /// crash-free quanta.
    restart_hint_seen: u64,
}

impl Machine {
    /// Build a machine with `nodes` nodes over `net`.
    ///
    /// # Panics
    ///
    /// Panics if `nodes` is zero or exceeds the substrate's node count,
    /// or if `cfg.packet_words` is zero or odd.
    pub fn new(net: SharedNetwork, nodes: usize, cfg: CmamConfig) -> Self {
        assert!(nodes > 0, "need at least one node");
        assert!(
            nodes <= net.borrow().num_nodes(),
            "substrate has only {} nodes",
            net.borrow().num_nodes()
        );
        assert!(
            cfg.packet_words >= 2 && cfg.packet_words.is_multiple_of(2),
            "packet_words must be even and at least 2"
        );
        let mut node_vec = Vec::with_capacity(nodes);
        for i in 0..nodes {
            let cpu = CostHandle::new();
            node_vec.push(Node {
                ni: NiPort::new(NodeId::new(i), net.clone(), cpu.clone()),
                mem: Memory::new(cfg.mem_words, cpu.clone()),
                cpu,
                handlers: HashMap::new(),
                rpc_handlers: HashMap::new(),
            });
        }
        Machine {
            net,
            nodes: node_vec,
            cfg,
            streams: Vec::new(),
            next_call_id: 0,
            rpc_replies: HashMap::new(),
            session_epochs: HashMap::new(),
            sessions: HashMap::new(),
            restart_seen: vec![0; nodes],
            restart_hint_seen: 0,
        }
    }

    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// The configuration this machine runs with.
    pub fn config(&self) -> &CmamConfig {
        &self.cfg
    }

    /// The shared network substrate.
    pub fn network(&self) -> &SharedNetwork {
        &self.net
    }

    /// The cost recorder of `node` (shared handle — snapshot or reset it
    /// to measure a protocol run).
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    pub fn cpu(&self, node: NodeId) -> CostHandle {
        self.nodes[node.index()].cpu.clone()
    }

    /// Reset every node's cost recorder.
    pub fn reset_costs(&mut self) {
        for n in &self.nodes {
            n.cpu.reset();
        }
    }

    /// Advance the network substrate by `cycles` (free of instruction
    /// cost).
    pub fn advance(&self, cycles: u64) {
        self.net.borrow_mut().advance(cycles);
    }

    pub(crate) fn node_mut(&mut self, node: NodeId) -> &mut Node {
        &mut self.nodes[node.index()]
    }

    /// Cost-free peek at the packet waiting at `node`'s NI (latched
    /// first, else the head of the substrate's receive queue).
    pub(crate) fn rx_peek_at(&mut self, node: NodeId) -> Option<RxMeta> {
        self.nodes[node.index()].ni.rx_peek()
    }

    /// Allocate a fresh RPC correlation id.
    pub(crate) fn alloc_call_id(&mut self) -> u64 {
        let id = self.next_call_id;
        self.next_call_id += 1;
        id
    }

    /// Open a fresh session epoch for reliable transfers `src → dst`.
    /// Monotonic per ordered pair, starting at 1 (epoch 0 never names a
    /// live session). Cost-free: the stamp rides in header words the
    /// handshake already pays to send.
    pub(crate) fn next_session_epoch(&mut self, src: NodeId, dst: NodeId) -> u32 {
        let e = self.session_epochs.entry((src, dst)).or_insert(0);
        *e += 1;
        *e
    }

    /// How many times the fault plane has crash-restarted `node` so far
    /// (cost-free substrate query).
    pub(crate) fn restarts_of(&self, node: NodeId) -> u32 {
        self.net.borrow().restarts(node)
    }

    /// Absorb any node crash-restarts the fault plane performed since
    /// the last call: a restarted node comes back with amnesia, so its
    /// reliable-transfer session table, its RPC reply cache, its stream
    /// cursors and whatever sat in its receive queue are erased.
    ///
    /// Cost-free by design — this models the *state loss itself*. The
    /// instruction bill of recovering from it is charged where peers
    /// detect the restart (stale-epoch discards, `SessionReset`
    /// fail-fast) and re-establish sessions, all under
    /// `Feature::FaultTol`. On a crash-free run the per-node counters
    /// never move and this is a single hint comparison. Returns the
    /// nodes whose restarts were absorbed this call (empty on the
    /// crash-free fast path) so a readiness scheduler can wake their
    /// subscribers.
    pub(crate) fn observe_restarts(&mut self) -> Vec<NodeId> {
        // O(1) early-out: the hint is any value that changes whenever a
        // per-node restart counter does.
        let hint = self.net.borrow().restarts_hint();
        if hint == self.restart_hint_seen {
            return Vec::new();
        }
        self.restart_hint_seen = hint;
        let mut restarted = Vec::new();
        for i in 0..self.nodes.len() {
            let node = NodeId::new(i);
            let count = self.net.borrow().restarts(node);
            if count == self.restart_seen[i] {
                continue;
            }
            self.restart_seen[i] = count;
            restarted.push(node);
            // The restarted node's own endpoint protocol state is gone.
            self.sessions.retain(|&(receiver, _), _| receiver != node);
            self.rpc_replies.retain(|&(callee, _, _), _| callee != node);
            for st in &mut self.streams {
                st.crash_reset(node);
            }
            // Anything queued for it at the NI was lost with the node.
            let mut net = self.net.borrow_mut();
            while net.try_receive(node).is_some() {}
        }
        restarted
    }

    /// Drain the substrate's per-node delivery wake set (see
    /// [`Network::take_delivered`](timego_netsim::Network::take_delivered)).
    pub(crate) fn take_delivered(&mut self) -> Vec<NodeId> {
        self.net.borrow_mut().take_delivered()
    }

    /// Consume and discard the (peeked) packet at `node`'s queue head as
    /// recovery noise: the control-receive identification shape plus the
    /// fault-tolerance stray-discard charge, mirroring what the blocking
    /// recovery paths paid for strays.
    pub(crate) fn discard_stray(&mut self, node: NodeId) {
        let n = self.node_mut(node);
        let ok = n.ni.poll_status();
        debug_assert!(ok, "discard_stray requires a gated (peeked) packet");
        n.cpu.call(am4_recv::CALL);
        n.cpu.reg(Fine::CheckStatus, am4_recv::STATUS_REG);
        n.cpu.ctrl(am4_recv::CTRL);
        let _ = n.ni.latch_rx();
        let _ = n.ni.read_header();
        n.cpu.clone().with_feature(Feature::FaultTol, |cpu| {
            cpu.reg(Fine::RegOp, recovery::STRAY_DISCARD_REG);
        });
        n.ni.drop_latched();
    }

    /// Epoch-TTL garbage sweep over the receiver-side protocol tables:
    /// reclaim reliable-transfer sessions and cached RPC replies whose
    /// age (against [`CmamConfig::gc_ttl_cycles`]) says no live peer can
    /// still be driving them, skipping entries a live operation owns.
    ///
    /// Each reclaimed entry bills the table-maintenance shape to
    /// `Feature::FaultTol` at the node holding it (the receiver for
    /// sessions, the callee for replies). Segment *memory* is a bump
    /// allocator with no free — what GC bounds is the shadow state the
    /// protocol consults (session table, reply cache), which is the
    /// state that grows per crash. Returns `(sessions, replies)`
    /// reclaimed.
    pub(crate) fn gc_expired(
        &mut self,
        live_sessions: &HashSet<(NodeId, NodeId)>,
        live_replies: &HashSet<(NodeId, NodeId, u32)>,
    ) -> (usize, usize) {
        self.gc_tables(self.cfg.gc_ttl_cycles, live_sessions, live_replies)
    }

    /// Cheap pre-check for the per-quantum sweep: is *any* session or
    /// cached reply TTL-expired right now, ignoring live-set
    /// exemptions? When this is `false` a full [`Machine::gc_expired`]
    /// is guaranteed to reclaim (and bill) nothing, so the engine can
    /// skip building the live sets entirely. Conservative in the safe
    /// direction: a live-exempt expired entry still returns `true`.
    pub(crate) fn gc_has_expired(&self) -> bool {
        if self.sessions.is_empty() && self.rpc_replies.is_empty() {
            return false;
        }
        let now = self.net.borrow().now().cycles();
        let ttl = self.cfg.gc_ttl_cycles;
        self.sessions.values().any(|s| now.saturating_sub(s.opened_at) >= ttl)
            || self.rpc_replies.values().any(|r| now.saturating_sub(r.cached_at) >= ttl)
    }

    /// Force-run the garbage sweep with a zero TTL and no live-set
    /// exemptions: every session and cached reply still in the tables is
    /// reclaimed (and billed to `FaultTol` at its holder). For tests and
    /// benches that assert the bounded-table property after a run
    /// completes. Returns `(sessions, replies)` reclaimed.
    pub fn gc_sweep(&mut self) -> (usize, usize) {
        self.gc_tables(0, &HashSet::new(), &HashSet::new())
    }

    fn gc_tables(
        &mut self,
        ttl: u64,
        live_sessions: &HashSet<(NodeId, NodeId)>,
        live_replies: &HashSet<(NodeId, NodeId, u32)>,
    ) -> (usize, usize) {
        let now = self.net.borrow().now().cycles();
        let dead_sessions: Vec<(NodeId, NodeId)> = self
            .sessions
            .iter()
            .filter(|(k, s)| {
                !live_sessions.contains(*k) && now.saturating_sub(s.opened_at) >= ttl
            })
            .map(|(&k, _)| k)
            .collect();
        for k in &dead_sessions {
            self.sessions.remove(k);
            self.cpu(k.0).with_feature(Feature::FaultTol, |c| {
                c.reg(Fine::RegOp, recovery::SESSION_GC_REG);
                c.mem_store(recovery::SESSION_GC_MEM);
            });
        }
        let dead_replies: Vec<(NodeId, NodeId, u32)> = self
            .rpc_replies
            .iter()
            .filter(|(k, r)| {
                !live_replies.contains(*k) && now.saturating_sub(r.cached_at) >= ttl
            })
            .map(|(&k, _)| k)
            .collect();
        for k in &dead_replies {
            self.rpc_replies.remove(k);
            self.cpu(k.0).with_feature(Feature::FaultTol, |c| {
                c.reg(Fine::RegOp, recovery::REPLY_GC_REG);
                c.mem_store(recovery::REPLY_GC_MEM);
            });
        }
        (dead_sessions.len(), dead_replies.len())
    }

    /// Number of reliable-transfer sessions currently open across all
    /// receivers (the table the epoch-TTL sweep bounds).
    #[must_use]
    pub fn open_sessions(&self) -> usize {
        self.sessions.len()
    }

    /// Number of RPC replies currently cached across all callees (the
    /// exactly-once dedup table the epoch-TTL sweep bounds).
    #[must_use]
    pub fn reply_cache_len(&self) -> usize {
        self.rpc_replies.len()
    }

    // --- harness-side buffer helpers (cost-free by design) ------------

    /// Allocate `words` words of node memory (allocation is free, as in
    /// the paper).
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range or its memory is exhausted.
    pub fn alloc(&mut self, node: NodeId, words: usize) -> Addr {
        self.nodes[node.index()].mem.alloc(words)
    }

    /// Allocate a buffer on `node` and fill it with `data` without cost
    /// accounting (harness setup).
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range or its memory is exhausted.
    pub fn write_buffer(&mut self, node: NodeId, data: &[u32]) -> Addr {
        let n = &mut self.nodes[node.index()];
        let addr = n.mem.alloc(data.len().max(1));
        n.mem.poke(addr, data);
        addr
    }

    /// Read `words` words from `node` memory without cost accounting
    /// (harness verification).
    ///
    /// # Panics
    ///
    /// Panics if `node` or the address range is out of range.
    pub fn read_buffer(&self, node: NodeId, addr: Addr, words: usize) -> Vec<u32> {
        self.nodes[node.index()].mem.peek(addr, words).to_vec()
    }

    // --- single-packet delivery (Table 1) ------------------------------

    /// Send a four-word active message — the paper's `CMAM_4`,
    /// Table 1's 20-instruction source path (call/return 3, NI setup 5,
    /// write to NI 2, check status 7, control flow 3).
    ///
    /// Retries on backpressure (re-staging the packet and paying again)
    /// up to the configured wait bound.
    ///
    /// # Errors
    ///
    /// [`ProtocolError::Timeout`] if the network refuses the packet for
    /// longer than `max_wait_cycles`.
    ///
    /// # Panics
    ///
    /// Panics if `src` or `dst` is out of range.
    pub fn am4_send(
        &mut self,
        src: NodeId,
        dst: NodeId,
        tag: u8,
        words: [u32; 4],
    ) -> Result<(), ProtocolError> {
        assert!(dst.index() < self.nodes.len(), "destination out of range");
        let max_wait = self.cfg.max_wait_cycles;
        let node = self.node_mut(src);
        let mut waited = 0;
        loop {
            node.cpu.call(am4_send::CALL);
            node.cpu.reg(Fine::NiSetup, am4_send::SETUP_REG);
            node.ni.stage_envelope(dst, tag, 0);
            node.ni.push_payload2(words[0], words[1]);
            node.ni.push_payload2(words[2], words[3]);
            node.cpu.reg(Fine::CheckStatus, am4_send::STATUS_REG);
            node.cpu.ctrl(am4_send::CTRL);
            if node.ni.commit_send() {
                node.ni.load_send_status();
                return Ok(());
            }
            if waited >= max_wait {
                return Err(ProtocolError::timeout("am4 injection", waited));
            }
            node.ni.advance(1);
            waited += 1;
        }
    }

    /// Register a user handler for `tag` on `node`. The handler runs
    /// when [`Machine::poll`] dispatches a matching message; it receives
    /// the node's memory and the message. Replaces any previous handler
    /// for the tag.
    ///
    /// # Panics
    ///
    /// Panics if the tag is in the reserved protocol range
    /// (below [`Tags::USER_BASE`]) or `node` is out of range.
    pub fn register_handler(
        &mut self,
        node: NodeId,
        tag: u8,
        handler: impl FnMut(&mut Memory, Am4Msg) + 'static,
    ) {
        assert!(tag >= Tags::USER_BASE, "tags below {} are reserved", Tags::USER_BASE);
        self.nodes[node.index()].handlers.insert(tag, Box::new(handler));
    }

    /// Poll `node` for one incoming message — the paper's
    /// `CMAM_request_poll` / `CMAM_handle_left` / `CMAM_got_left` path.
    ///
    /// With a user message waiting this costs Table 1's 27 destination
    /// instructions (call/return 10, read from NI 3, check status 12,
    /// control flow 2) plus whatever the handler itself does. An idle
    /// poll costs the 13-instruction entry (call/return 10, one status
    /// load, control flow 2).
    ///
    /// Packets with reserved protocol tags arriving outside their
    /// protocol phase are returned as [`PollOutcome::Unclaimed`].
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    pub fn poll(&mut self, node: NodeId) -> PollOutcome {
        let n = &mut self.nodes[node.index()];
        n.cpu.call(am4_recv::CALL);
        n.cpu.ctrl(am4_recv::CTRL);
        if !n.ni.poll_status() {
            return PollOutcome::Idle;
        }
        // Latch + tag vectoring: the rest of Table 1's check-status row.
        n.cpu.reg(Fine::CheckStatus, am4_recv::STATUS_REG);
        let Some((src, tag)) = n.ni.latch_rx() else {
            return PollOutcome::Idle;
        };
        let header = n.ni.read_header();
        let (w0, w1) = n.ni.read_payload2();
        let (w2, w3) = n.ni.read_payload2();
        let msg = Am4Msg {
            src,
            tag,
            header,
            words: [w0, w1, w2, w3],
        };
        if tag < Tags::USER_BASE {
            return PollOutcome::Unclaimed(msg);
        }
        match n.handlers.remove(&tag) {
            Some(mut h) => {
                n.cpu.handler(2);
                h(&mut n.mem, msg);
                self.nodes[node.index()].handlers.insert(tag, h);
                PollOutcome::Handled(tag)
            }
            None => PollOutcome::Unclaimed(msg),
        }
    }

    /// Poll `node` repeatedly until a message is handled or `max_polls`
    /// polls have happened; idle polls advance the network one cycle.
    pub fn poll_until_handled(&mut self, node: NodeId, max_polls: u64) -> PollOutcome {
        for _ in 0..max_polls {
            match self.poll(node) {
                PollOutcome::Idle => self.advance(1),
                other => return other,
            }
        }
        PollOutcome::Idle
    }
}

impl std::fmt::Debug for Machine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Machine")
            .field("nodes", &self.nodes.len())
            .field("cfg", &self.cfg)
            .field("streams", &self.streams.len())
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use timego_cost::{Class, Endpoint, Feature};
    use timego_netsim::{DeliveryScript, ScriptedNetwork};
    use timego_ni::share;

    pub(crate) fn scripted_machine(nodes: usize, script: DeliveryScript) -> Machine {
        Machine::new(
            share(ScriptedNetwork::new(nodes, script)),
            nodes,
            CmamConfig::default(),
        )
    }

    fn n(i: usize) -> NodeId {
        NodeId::new(i)
    }

    #[test]
    fn am4_send_costs_exactly_twenty_instructions() {
        let mut m = scripted_machine(2, DeliveryScript::InOrder);
        m.am4_send(n(0), n(1), Tags::USER_BASE, [1, 2, 3, 4]).unwrap();
        let v = m.cpu(n(0)).snapshot();
        assert_eq!(v.total(), 20, "Table 1 source cost");
        assert_eq!(v.class_total(Class::Dev), 5);
        assert_eq!(v.class_total(Class::Reg), 15);
        assert_eq!(v.fine_total(Fine::CallReturn), 3);
        assert_eq!(v.fine_total(Fine::NiSetup), 5);
        assert_eq!(v.fine_total(Fine::WriteNi), 2);
        assert_eq!(v.fine_total(Fine::CheckStatus), 7);
        assert_eq!(v.fine_total(Fine::ControlFlow), 3);
    }

    #[test]
    fn poll_with_message_costs_twenty_seven_instructions() {
        let mut m = scripted_machine(2, DeliveryScript::InOrder);
        m.register_handler(n(1), Tags::USER_BASE, |_, _| {});
        m.am4_send(n(0), n(1), Tags::USER_BASE, [9, 8, 7, 6]).unwrap();
        m.cpu(n(1)).reset();
        let outcome = m.poll(n(1));
        assert_eq!(outcome, PollOutcome::Handled(Tags::USER_BASE));
        let v = m.cpu(n(1)).snapshot();
        // 27 for the reception path + 2 for handler dispatch.
        assert_eq!(v.fine_total(Fine::CallReturn), 10);
        assert_eq!(v.fine_total(Fine::ReadNi), 3);
        assert_eq!(v.fine_total(Fine::CheckStatus), 12);
        assert_eq!(v.fine_total(Fine::ControlFlow), 2);
        assert_eq!(v.class_total(Class::Dev), 5);
        assert_eq!(v.total(), 27 + 2);
    }

    #[test]
    fn handler_receives_message_and_memory() {
        let mut m = scripted_machine(2, DeliveryScript::InOrder);
        let seen = std::rc::Rc::new(std::cell::RefCell::new(None));
        let seen2 = seen.clone();
        m.register_handler(n(1), 20, move |mem, msg| {
            let a = mem.alloc(1);
            mem.store(a, msg.words[0] + msg.words[3]);
            *seen2.borrow_mut() = Some(msg);
        });
        m.am4_send(n(0), n(1), 20, [10, 0, 0, 32]).unwrap();
        assert_eq!(m.poll(n(1)), PollOutcome::Handled(20));
        let msg = seen.borrow().clone().expect("handler ran");
        assert_eq!(msg.src, n(0));
        assert_eq!(msg.words, [10, 0, 0, 32]);
    }

    #[test]
    fn idle_poll_is_cheap_and_returns_idle() {
        let mut m = scripted_machine(2, DeliveryScript::InOrder);
        assert_eq!(m.poll(n(1)), PollOutcome::Idle);
        let v = m.cpu(n(1)).snapshot();
        assert_eq!(v.total(), 13); // 10 call + 1 dev poll + 2 ctrl
    }

    #[test]
    fn unhandled_tag_is_unclaimed() {
        let mut m = scripted_machine(2, DeliveryScript::InOrder);
        m.am4_send(n(0), n(1), 99, [1, 1, 1, 1]).unwrap();
        match m.poll(n(1)) {
            PollOutcome::Unclaimed(msg) => assert_eq!(msg.tag, 99),
            other => panic!("expected unclaimed, got {other:?}"),
        }
    }

    #[test]
    fn am4_costs_land_in_base_feature() {
        let mut m = scripted_machine(2, DeliveryScript::InOrder);
        m.am4_send(n(0), n(1), 20, [0; 4]).unwrap();
        let v = m.cpu(n(0)).snapshot();
        assert_eq!(v.feature_total(Feature::Base), v.total());
    }

    #[test]
    #[should_panic(expected = "reserved")]
    fn registering_reserved_tag_panics() {
        let mut m = scripted_machine(2, DeliveryScript::InOrder);
        m.register_handler(n(0), Tags::XFER_DATA, |_, _| {});
    }

    #[test]
    fn matches_analytic_single_packet_model() {
        let mut m = scripted_machine(2, DeliveryScript::InOrder);
        m.register_handler(n(1), 20, |_, _| {});
        m.am4_send(n(0), n(1), 20, [0; 4]).unwrap();
        // Don't count handler dispatch: measure reception only up to the
        // analytic model's boundary (the model excludes the user
        // handler's own work but includes invoking it; our dispatch
        // costs 2 extra handler instructions, so compare against src
        // exactly and dst minus dispatch).
        let model = timego_cost::analytic::single_packet();
        assert_eq!(
            m.cpu(n(0)).snapshot().total(),
            model.endpoint_total(Endpoint::Source)
        );
        m.cpu(n(1)).reset();
        let _ = m.poll(n(1));
        assert_eq!(
            m.cpu(n(1)).snapshot().total() - 2,
            model.endpoint_total(Endpoint::Destination)
        );
    }
}
