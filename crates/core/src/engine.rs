//! Event-driven protocol engine: concurrent per-node protocol state
//! machines replacing the world-driving blocking loops.
//!
//! Each in-flight operation (finite transfer, reliable transfer, stream
//! send, RPC) is a state machine whose `step` performs exactly one
//! iteration of the corresponding blocking driver loop — minus the
//! `advance(1)` the blocking loop used to pass time. The [`Engine`]
//! owns the clock: it round-robins every active operation, and only
//! when **no** operation makes progress does it advance the substrate
//! one cycle and deliver a timer tick to every operation (this is what
//! drives retry deadlines from [`RetryPolicy`](crate::RetryPolicy) and
//! stream retransmission timeouts).
//!
//! Because a single-operation engine run performs the same instruction
//! sequence as the old blocking loop, the blocking entry points
//! ([`Machine::xfer`], [`Machine::stream_send`], [`Machine::rpc_call`],
//! …) are now thin run-to-completion wrappers over the engine and stay
//! cost-identical per feature — the paper's tables regenerate exactly.
//!
//! ## The substrate may be parallel; the engine stays sequential
//!
//! The engine is single-threaded by design: one thread owns the
//! machine, steps operations, and calls `advance` on the shared
//! substrate handle. That remains true when the substrate is the
//! parallel sharded network
//! ([`ShardedNetwork`](timego_netsim::ShardedNetwork)) — the network
//! steps its shards on an internal worker pool *inside* `advance`,
//! then presents merged wakes in ascending node-id order and reduced
//! statistics, so from here it is indistinguishable from a
//! single-threaded substrate. Nothing in the pump changes: injections
//! happen between advances (which is exactly the property the sharded
//! substrate's determinism argument rests on), `take_delivered` feeds
//! [`absorb_wakes`](Engine) the same byte-identical sequence at every
//! worker-thread count, and idle clock-jumps hand the substrate one
//! big `advance(n)` — which the sharded network turns into a single
//! parallel dispatch rather than `n` sequential ones.
//!
//! ## Concurrency model
//!
//! Operations are admitted in submission order. Two operations conflict
//! when they would consume each other's packets: finite transfers
//! (plain or reliable) between the same ordered `(src, dst)` pair, and
//! stream sends between the same ordered pair. Conflicting operations
//! are serialized; everything else interleaves freely. RPCs never
//! conflict — replies are correlated by call id, so any number of
//! concurrent calls (even between the same pair) sort themselves out.
//!
//! Packet consumption is *gated*: an operation only issues the receive
//! sequence when a cost-free NI peek ([`RxMeta`]) shows that the
//! packet at the head of its node's queue belongs to it. Reserved-tag
//! packets claimed by no active operation (stale duplicates of
//! completed operations) are discarded by the engine with the same
//! instruction shape the blocking recovery paths charged for stray
//! discards.
//!
//! ## Run-after dependencies
//!
//! Every `submit_*` method has a `submit_*_after` twin taking
//! `after: &[OpId]`. A dependent operation stays **held** — submitted
//! but not admissible — until every predecessor completes successfully;
//! the moment the last one does, the scheduler records
//! [`EngineEvent::Released`] and the operation joins the ordinary
//! admission queue (conflict-key FIFO applies from that point, not
//! before: a held operation does not occupy its conflict key). If a
//! predecessor fails, the dependent fails immediately with
//! [`ProtocolError::DependencyFailed`] naming that predecessor, and the
//! failure cascades through every transitive dependent. Dependencies
//! must name already-submitted operations — `OpId`s are handed out at
//! submission, so a forward edge (and therefore a cycle) is rejected at
//! submission time.
//!
//! ## Supervision: deadlines, watchdog, cancellation
//!
//! Liveness is enforced per operation, not globally. Every operation
//! can carry a *deadline* ([`Engine::set_deadline`],
//! [`Engine::submit_xfer_reliable_with_deadline`]): when the substrate
//! clock passes it, the operation — running, pending, or held — is
//! settled with the retryable [`ProtocolError::DeadlineExceeded`],
//! freeing its conflict key so queued work proceeds. Independently, a
//! *watchdog* (default bound 4 × `max_wait_cycles`, override with
//! [`Engine::set_watchdog`]) settles any individual running operation
//! that has gone that many cycles without making progress — the
//! protocol state machines' own retry timeouts fire first in any sane
//! configuration, so the watchdog only catches operations wedged
//! outside their own envelope. [`Engine::cancel`] settles one
//! operation with [`ProtocolError::Cancelled`] (cascading
//! `DependencyFailed` to its dependents), and [`Engine::quiesce`]
//! drains the whole engine gracefully: not-yet-started work is
//! cancelled, admitted work runs to completion, and residual fabric
//! state is swept.
//!
//! ## Session epochs
//!
//! Reliable transfers stamp every handshake and control packet with a
//! per-ordered-pair monotonic *session epoch* (allocated at admission
//! from [`Machine::next_session_epoch`]). The data-packet nonce is
//! derived from the epoch, and both endpoints discard — under
//! `Feature::FaultTol`, with the stray-discard instruction shape — any
//! packet carrying a stale epoch. This closes the duplicate-poisoning
//! hole: a jitter-delayed duplicate of an *earlier* same-pair
//! handshake can no longer be mistaken for the current session's
//! traffic. Epoch stamps ride in header words the protocol already
//! paid to send, so a clean run bills exactly what the unstamped
//! protocol billed.

use std::collections::{BTreeMap, BTreeSet, HashSet, VecDeque};
use std::time::Instant;

use timego_cost::{CostVector, Feature, Fine};
use timego_netsim::{LatencyStats, NodeId, RxMeta};
use timego_ni::Addr;

use crate::am::PollOutcome;
use crate::costs::{recovery, segment, xfer_order, xfer_recv, xfer_send};
use crate::error::ProtocolError;
use crate::machine::{Machine, Tags};
use crate::retry::{RecoveryPolicy, RetryPolicy};
use crate::rpc::RpcEvent;
use crate::sched::{SchedCounters, SchedMode, SchedPhase, SchedProfiler, Slab, TimingWheel};
use crate::stream::{StreamId, StreamOutcome};
use crate::machine::SessionEntry;
use crate::xfer::{PayloadEngine, XferOutcome, XferRx};
use crate::xfer_reliable::{ReliableOutcome, OFFSET_BITS, OFFSET_MASK};

/// Identifies one submitted operation within an [`Engine`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct OpId(u64);

impl OpId {
    /// The raw id (monotonically increasing in submission order).
    #[must_use]
    pub fn raw(self) -> u64 {
        self.0
    }

    /// Mint an id from a raw value (crate-internal test helper).
    #[cfg(test)]
    pub(crate) fn from_raw(raw: u64) -> Self {
        OpId(raw)
    }
}

/// What a completed operation produced.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum OpOutcome {
    /// A finite-sequence transfer completed.
    Xfer(XferOutcome),
    /// A fault-tolerant finite-sequence transfer completed.
    Reliable(ReliableOutcome),
    /// A stream send completed.
    Stream(StreamOutcome),
    /// An RPC completed with these reply words.
    Rpc([u32; 4]),
    /// A single four-word active message was delivered. The words are
    /// what the destination actually read off its NI (zeroed when a
    /// registered handler consumed the message instead of handing it
    /// back).
    Am4([u32; 4]),
}

/// Scheduler trace events, in order. Tests use the interleaving of
/// `Progressed` events to prove operations ran concurrently rather than
/// back to back.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EngineEvent {
    /// The operation was accepted into the engine.
    Submitted(OpId),
    /// Every run-after predecessor of the operation completed
    /// successfully: the operation became admissible and joined the
    /// admission queue. Operations submitted with no outstanding
    /// dependencies are released immediately after submission.
    Released(OpId),
    /// The operation was admitted (its conflict key was free) and
    /// started executing.
    Started(OpId),
    /// The operation's step made protocol progress (sent, received, or
    /// transitioned).
    Progressed(OpId),
    /// The operation finished; `true` means it produced an outcome,
    /// `false` an error.
    Completed(OpId, bool),
    /// The operation settled with a retryable error but carries a
    /// [`RecoveryPolicy`] with budget left: instead of completing, the
    /// engine parked it for the backoff window and will re-execute it
    /// under the same `OpId` with a fresh session epoch. Run-after
    /// dependents stay held across re-executions and release only when
    /// the operation finally completes successfully.
    Recovering(OpId),
    /// The operation was cancelled ([`Engine::cancel`] or
    /// [`Engine::quiesce`]) — recorded uniformly whether the operation
    /// was running, pending, dependency-held, or parked for recovery,
    /// immediately before the `Completed(id, false)` it settles with.
    Cancelled(OpId),
}

/// One scheduler trace entry: an [`EngineEvent`] stamped with the
/// substrate clock (network cycles) at the moment it was recorded.
///
/// The stamps turn the trace into a measurement instrument: the
/// distance from an operation's `Submitted` stamp to its `Completed`
/// stamp is its *completion time* — queueing delay included — which is
/// what an open-loop offered-load study needs (see
/// [`Engine::completion_times`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TracedEvent {
    /// Substrate clock when the event was recorded, in network cycles.
    pub at: u64,
    /// The scheduler event itself.
    pub event: EngineEvent,
}

/// One step's verdict.
enum Stepped {
    /// The operation did real protocol work this step.
    Progress,
    /// Nothing to do until the world changes (a packet arrives or a
    /// cycle passes).
    Idle,
    /// The operation finished.
    Done(OpOutcome),
}

/// Conflict key: operations with equal keys are serialized.
type ConflictKey = (u8, NodeId, NodeId);

const CLASS_XFER: u8 = 0;
const CLASS_STREAM: u8 = 1;
const CLASS_AM: u8 = 2;

struct ActiveOp {
    id: OpId,
    op: OpKind,
    /// Substrate clock at admission / last step that made progress —
    /// what the no-progress watchdog measures against.
    last_progress_at: u64,
}

/// A submitted operation still waiting on run-after predecessors.
struct HeldOp {
    op: ActiveOp,
    waiting_on: HashSet<OpId>,
}

/// One admitted operation's scheduler slot in the run arena. Both
/// scheduler modes share this storage; the readiness fields (`ready`,
/// `slept_epoch`, `sleep_gen`, `wd_due`) are only consulted by the
/// event-driven mode — the reference round-robin sweeps every slot in
/// `run_order` regardless.
struct RunSlot {
    a: ActiveOp,
    /// Incarnation number, unique across the engine's lifetime. Slab
    /// slots are reused, so timing-wheel entries validate `(slot, inc)`
    /// before acting.
    inc: u64,
    /// Eligible to be stepped this sweep. Cleared when a step returns
    /// `Idle` (the op goes to sleep on its wake conditions), set again
    /// by a packet touch or wheel timer.
    ready: bool,
    /// The engine's tick epoch when the op last went to sleep — the
    /// lazy-tick anchor: on wake it receives `tick_epoch - slept_epoch`
    /// timer ticks at once. Ticks are counted in the *engine-advance*
    /// domain, not raw substrate cycles: the reference scheduler ticks
    /// ops once per engine-driven idle `advance`, while cycles burned
    /// *inside* an op's step (blocking NI waits) tick nobody.
    slept_epoch: u64,
    /// Bumped on every wake so a stale wheel wake for an earlier sleep
    /// of the same slot is recognized and ignored.
    sleep_gen: u64,
    /// Whether this op currently holds a live entry in the subscriber
    /// list of `endpoints().0` / `endpoints().1` respectively. Lists
    /// hold only *sleeping* ops and are drained wholesale on touch, so
    /// a touch at a hot node costs its sleeper count, not its lifetime
    /// subscriber count; these flags keep re-sleeps from pushing
    /// duplicate entries while an undrained one is still queued.
    subbed: [bool; 2],
    /// Absolute clock at which the no-progress watchdog would expire
    /// this op (`last_progress_at + bound + 1`). Wheel watchdog entries
    /// re-validate against this and lazily re-arm when the op progressed
    /// since they were scheduled.
    wd_due: u64,
}

/// What one timing-wheel expiry means to the event-driven scheduler.
/// Every variant is validated against current engine state when it
/// fires — entries are never eagerly cancelled, they just go stale.
enum WheelItem {
    /// Wake a sleeping op: the earliest future cycle at which its next
    /// step could be anything but a cost-free `Idle` (retry window,
    /// timeout threshold, RTO, or plain backpressure re-poll).
    Wake { slot: u32, inc: u64, gen: u64 },
    /// A deadline armed via [`Engine::set_deadline`] may be due.
    Deadline { id: OpId },
    /// A running op's no-progress watchdog may have expired.
    Watchdog { slot: u32, inc: u64 },
    /// A parked op's recovery backoff window closes here. Carries no
    /// payload — it exists so `next_due` bounds idle clock-jumps and the
    /// loop re-runs `release_recovered` at exactly the right cycle.
    ParkResume,
}

/// Re-execution recipe and budget for one recovery-armed operation
/// (see [`RecoveryPolicy`] and the `submit_*_recovering` variants).
struct RecoveryState {
    spec: OpSpec,
    policy: RecoveryPolicy,
    /// Re-executions performed so far (0 while the first execution is
    /// still the only one).
    re_executions: u32,
}

/// Everything needed to rebuild an operation's state machine for an
/// engine-native re-execution. The rebuild is from first principles —
/// a fresh `start` allocates a fresh session epoch — except where
/// exactly-once semantics need continuity: a stream re-execution
/// resumes at the receiver's contiguous mark instead of re-sending
/// delivered packets, and an RPC re-execution reuses its call id so
/// the callee's reply cache deduplicates a handler that already ran.
enum OpSpec {
    Reliable {
        src: NodeId,
        dst: NodeId,
        data: Vec<u32>,
        n: usize,
        policy: RetryPolicy,
    },
    Stream {
        id: StreamId,
        src: NodeId,
        dst: NodeId,
        data: Vec<u32>,
        n: usize,
        rto_iterations: u64,
        /// First sequence number of the burst, learned from the first
        /// execution's `start` (earlier same-stream sends may still be
        /// advancing the sequence at submission time).
        base_seq: Option<u64>,
    },
    Rpc {
        src: NodeId,
        dst: NodeId,
        tag: u8,
        args: [u32; 4],
        call_id: u64,
        policy: Option<RetryPolicy>,
    },
    Am4 {
        src: NodeId,
        dst: NodeId,
        tag: u8,
        words: [u32; 4],
        token: u32,
    },
}

impl OpSpec {
    /// The node recovery work is billed at (the operation's source).
    fn source(&self) -> NodeId {
        match self {
            OpSpec::Reliable { src, .. }
            | OpSpec::Stream { src, .. }
            | OpSpec::Rpc { src, .. }
            | OpSpec::Am4 { src, .. } => *src,
        }
    }

    /// Mirror of [`OpKind::conflict_key`], answerable while the op is
    /// parked (no live `OpKind` exists between executions).
    fn conflict_key(&self) -> Option<ConflictKey> {
        match self {
            OpSpec::Reliable { src, dst, .. } => Some((CLASS_XFER, *src, *dst)),
            OpSpec::Stream { src, dst, .. } => Some((CLASS_STREAM, *src, *dst)),
            OpSpec::Rpc { .. } => None,
            OpSpec::Am4 { src, dst, .. } => Some((CLASS_AM, *src, *dst)),
        }
    }

    fn rebuild(&self) -> OpKind {
        match self {
            OpSpec::Reliable { src, dst, data, n, policy } => OpKind::Reliable(ReliableOp::new(
                *src,
                *dst,
                data.clone(),
                *n,
                policy.clone(),
            )),
            OpSpec::Stream { id, src, dst, data, n, rto_iterations, base_seq } => {
                let mut op = StreamOp::new(*id, *src, *dst, data.clone(), *n, *rto_iterations);
                op.resume_base = *base_seq;
                OpKind::Stream(op)
            }
            OpSpec::Rpc { src, dst, tag, args, call_id, policy } => OpKind::Rpc(RpcOp::new(
                *src,
                *dst,
                *tag,
                *args,
                *call_id,
                policy.clone(),
                true,
            )),
            OpSpec::Am4 { src, dst, tag, words, token } => {
                OpKind::Am4(Am4Op::new(*src, *dst, *tag, *words, *token, true))
            }
        }
    }
}

enum OpKind {
    Xfer(XferOp),
    Reliable(ReliableOp),
    Stream(StreamOp),
    Rpc(RpcOp),
    Am4(Am4Op),
}

impl OpKind {
    fn conflict_key(&self) -> Option<ConflictKey> {
        match self {
            OpKind::Xfer(op) => Some((CLASS_XFER, op.src, op.dst)),
            OpKind::Reliable(op) => Some((CLASS_XFER, op.src, op.dst)),
            OpKind::Stream(op) => Some((CLASS_STREAM, op.src, op.dst)),
            OpKind::Rpc(_) => None,
            OpKind::Am4(op) => Some((CLASS_AM, op.src, op.dst)),
        }
    }

    fn start(&mut self, m: &mut Machine) {
        match self {
            OpKind::Xfer(op) => op.start(m),
            OpKind::Reliable(op) => op.start(m),
            OpKind::Stream(op) => op.start(m),
            OpKind::Rpc(op) => op.start(m),
            OpKind::Am4(op) => op.start(m),
        }
    }

    fn step(&mut self, m: &mut Machine) -> Result<Stepped, ProtocolError> {
        match self {
            OpKind::Xfer(op) => op.step(m),
            OpKind::Reliable(op) => op.step(m),
            OpKind::Stream(op) => op.step(m),
            OpKind::Rpc(op) => op.step(m),
            OpKind::Am4(op) => op.step(m),
        }
    }

    fn tick(&mut self) {
        match self {
            OpKind::Xfer(op) => op.tick(),
            OpKind::Reliable(op) => op.tick(),
            OpKind::Stream(op) => op.tick(),
            OpKind::Rpc(op) => op.tick(),
            OpKind::Am4(op) => op.tick(),
        }
    }

    /// Deliver `k` timer ticks at once — exactly what `k` consecutive
    /// [`OpKind::tick`] calls with no intervening steps would do. The
    /// event scheduler ticks sleeping ops lazily on wake, and a
    /// sleeping op by construction takes no steps in between, so the
    /// per-op closed forms are exact. `k == 0` is a no-op: a same-cycle
    /// wake must preserve `stalled` (the reference only clears it when
    /// a cycle actually passes).
    fn tick_n(&mut self, k: u64) {
        if k == 0 {
            return;
        }
        match self {
            OpKind::Xfer(op) => op.tick_n(k),
            OpKind::Reliable(op) => op.tick_n(k),
            OpKind::Stream(op) => op.tick_n(k),
            OpKind::Rpc(op) => op.tick_n(k),
            OpKind::Am4(op) => op.tick_n(k),
        }
    }

    /// The two endpoint nodes whose packet activity can change this
    /// op's behavior — what the event scheduler subscribes it to.
    fn endpoints(&self) -> (NodeId, NodeId) {
        match self {
            OpKind::Xfer(op) => (op.src, op.dst),
            OpKind::Reliable(op) => (op.src, op.dst),
            OpKind::Stream(op) => (op.src, op.dst),
            OpKind::Rpc(op) => (op.src, op.dst),
            OpKind::Am4(op) => (op.src, op.dst),
        }
    }

    /// Cycles until this op's next step could be anything but a
    /// cost-free `Idle`, absent packet activity at its endpoints (which
    /// wakes it earlier). `u64::MAX` means purely packet-driven — no
    /// timer tick alone can change its behavior (the no-progress
    /// watchdog still bounds how long it can sleep). Conservative by
    /// design: waking early costs one traceless idle step; waking late
    /// would diverge from the reference scheduler.
    fn wake_in(&self, m: &Machine) -> u64 {
        let max_wait = m.config().max_wait_cycles;
        match self {
            OpKind::Xfer(op) => op.wake_in(max_wait),
            OpKind::Reliable(op) => op.wake_in(max_wait),
            OpKind::Stream(op) => op.wake_in(max_wait),
            OpKind::Rpc(op) => op.wake_in(max_wait),
            OpKind::Am4(op) => op.wake_in(max_wait),
        }
    }

    /// Does a reserved-tag packet at `node`'s queue head belong to this
    /// operation? Claims are pair-wide and conservative: anything an
    /// operation might still consume must be claimed, or the engine's
    /// orphan discard would eat it.
    fn claims(&self, node: NodeId, meta: &RxMeta) -> bool {
        const XFER_TAGS: [u8; 6] = [
            Tags::XFER_REQ,
            Tags::XFER_REPLY,
            Tags::XFER_DATA,
            Tags::XFER_ACK,
            Tags::XFER_NACK,
            Tags::XFER_PROBE,
        ];
        match self {
            OpKind::Xfer(op) => {
                pairwise(node, meta.src, op.src, op.dst) && XFER_TAGS.contains(&meta.tag)
            }
            OpKind::Reliable(op) => {
                pairwise(node, meta.src, op.src, op.dst) && XFER_TAGS.contains(&meta.tag)
            }
            OpKind::Stream(op) => {
                pairwise(node, meta.src, op.src, op.dst)
                    && (meta.tag == Tags::STREAM_DATA || meta.tag == Tags::STREAM_ACK)
            }
            OpKind::Rpc(op) => {
                (node == op.dst && meta.src == op.src && meta.tag == op.tag)
                    || (node == op.src
                        && meta.src == op.dst
                        && meta.tag == Tags::RPC_REPLY
                        && meta.header == op.call_id as u32)
            }
            OpKind::Am4(op) => {
                node == op.dst
                    && meta.src == op.src
                    && meta.tag == op.tag
                    && meta.header == op.token
            }
        }
    }
}

fn pairwise(node: NodeId, pkt_src: NodeId, a: NodeId, b: NodeId) -> bool {
    (node == a || node == b) && (pkt_src == a || pkt_src == b)
}

/// The substrate clock, as raw network cycles (cost-free introspection).
fn clock(m: &Machine) -> u64 {
    m.network().borrow().now().cycles()
}

/// Ticks until a `waited`-style counter first *exceeds* `bound` (the
/// protocols' window checks are all `waited > bound`), clamped to at
/// least one cycle out.
fn win(bound: u64, waited: u64) -> u64 {
    bound.saturating_add(1).saturating_sub(waited).max(1)
}

/// The protocol engine: a scheduler interleaving NI polls, timer
/// expiries, and injections across every submitted operation.
///
/// Submit operations with the `submit_*` methods, drive them to
/// completion with [`Engine::run`], and collect `OpId`-keyed results
/// with [`Engine::take_outcome`].
pub struct Engine {
    next_id: u64,
    pending: VecDeque<ActiveOp>,
    // Running ops live in a slot-stable arena; `run_order` preserves
    // admission order (what the sweep and the watchdog scan follow).
    slots: Slab<RunSlot>,
    run_order: Vec<u32>,
    next_inc: u64,
    mode: SchedMode,
    // Timing wheel carrying op wakes, deadlines, watchdogs, and
    // park-resume markers (event mode only; empty under the reference
    // round-robin).
    wheel: TimingWheel<WheelItem>,
    // Wheel expiries harvested by `absorb_wakes`, pending validation in
    // `supervise_event`. Watchdog tuples are `(slot, inc, due)`.
    fired_deadlines: Vec<OpId>,
    fired_watchdogs: Vec<(u32, u64, u64)>,
    // node index -> `(slot, inc, endpoint idx)` entries for ops
    // currently *sleeping* on packet activity at that node. Pushed by
    // `sleep_slot`, drained wholesale by `touch_node` (waking each
    // still-valid sleeper), so the total list work is bounded by the
    // number of sleeps rather than touches x lifetime subscribers —
    // the difference between O(n) and O(n^2) under hotspot traffic.
    node_subs: Vec<Vec<(u32, u64, u8)>>,
    // Nodes whose rx queue saw activity since the orphan sweep last
    // proved their head clean. Invariant: any node whose queue head is
    // a discardable unclaimed packet is in this set, so scanning it
    // ascending finds the same node a full 0..N scan would.
    orphan_dirty: BTreeSet<usize>,
    // Engine-advance time: total cycles advanced by the *scheduler's
    // own* idle advances (each of which ticks every op once per cycle in
    // the reference). Cycles burned inside an op's step — blocking NI
    // waits advance the substrate clock mid-pass — tick nobody, so the
    // lazy-tick accounting anchors here rather than on the raw clock.
    tick_epoch: u64,
    counters: SchedCounters,
    profiler: Option<SchedProfiler>,
    busy: HashSet<ConflictKey>,
    // Held operations (run-after dependencies outstanding), keyed by id
    // so releases happen in submission order when one completion frees
    // several dependents at once.
    held: BTreeMap<OpId, HeldOp>,
    // Predecessor -> held dependents, for O(dependents) release.
    dependents: BTreeMap<OpId, Vec<OpId>>,
    // Completion ledger. `outcomes` is drained by `take_outcome`, so
    // dependency resolution needs its own persistent record.
    done_ok: HashSet<OpId>,
    done_err: HashSet<OpId>,
    outcomes: BTreeMap<OpId, Result<OpOutcome, ProtocolError>>,
    // Flattened root-cause error per failed op, kept (unlike `outcomes`,
    // which `take_outcome` drains) so late-submitted dependents can
    // carry the root in their `DependencyFailed`.
    root_errors: BTreeMap<OpId, ProtocolError>,
    // Per-op deadline: (absolute expiry on the substrate clock, the
    // budget it was set with — reported in the error).
    deadlines: BTreeMap<OpId, (u64, u64)>,
    // No-progress watchdog bound in cycles; `None` derives
    // 4 × max_wait_cycles from the machine config at enforcement time.
    watchdog: Option<u64>,
    // Engine-native recovery plane: per-op re-execution recipe and
    // budget, armed by the `submit_*_recovering` variants. Entries are
    // kept after settlement so `recovery_executions` stays answerable.
    recovery: BTreeMap<OpId, RecoveryState>,
    // Ops waiting out a recovery backoff window: id -> absolute
    // substrate clock at which to re-execute. A parked op keeps its
    // conflict key busy so queued same-key work cannot overtake the
    // re-execution (stream sequence ranges would otherwise collide).
    parked: BTreeMap<OpId, u64>,
    trace: Vec<TracedEvent>,
    // Consecutive no-progress cycles, persisted across `pump` calls
    // (diagnostic context for the defensive held-op sweep).
    idle_streak: u64,
    // Request-class plane (see `set_class`): op id -> caller-assigned
    // class tag, and the accumulated per-class cost split. Both empty
    // unless a caller tags ops, and every hot-path hook is gated on
    // that emptiness — untagged workloads pay nothing.
    class_of: BTreeMap<OpId, u8>,
    class_bills: BTreeMap<u8, CostVector>,
    // Per-class retry budgets (see `set_retry_budget`): a token bucket
    // consulted before every engine-native re-execution of a tagged
    // op. Empty unless a caller arms one — ops of unbudgeted classes
    // (and untagged ops) recover exactly as before.
    retry_budgets: BTreeMap<u8, RetryBudgetState>,
}

/// Token-bucket state of one class's retry budget. Tokens are held in
/// milli-units (1000 = one re-execution) so slow refills stay integer
/// and deterministic.
#[derive(Debug, Clone)]
struct RetryBudgetState {
    capacity_milli: u64,
    refill_milli_per_kcycle: u64,
    tokens_milli: u64,
    // Substrate clock of the last *spend* — refills are computed from
    // here on demand, so precision is lost only when tokens move.
    last_spend_at: u64,
    denied: u64,
}

impl RetryBudgetState {
    fn available_milli(&self, now: u64) -> u64 {
        let gained = u64::try_from(
            u128::from(now.saturating_sub(self.last_spend_at))
                * u128::from(self.refill_milli_per_kcycle)
                / 1000,
        )
        .unwrap_or(u64::MAX);
        self.tokens_milli.saturating_add(gained).min(self.capacity_milli)
    }
}

impl Default for Engine {
    fn default() -> Self {
        Engine::new()
    }
}

impl Engine {
    /// An empty engine running the default readiness-driven scheduler.
    #[must_use]
    pub fn new() -> Self {
        Engine::with_mode(SchedMode::EventDriven)
    }

    /// An empty engine with an explicit scheduler mode (see
    /// [`SchedMode`]). Both modes produce the identical trace and
    /// per-feature bills; [`SchedMode::ReferenceRoundRobin`] is kept as
    /// the equivalence baseline and for benchmarking.
    #[must_use]
    pub fn with_mode(mode: SchedMode) -> Self {
        Engine {
            next_id: 0,
            pending: VecDeque::new(),
            slots: Slab::new(),
            run_order: Vec::new(),
            next_inc: 0,
            mode,
            wheel: TimingWheel::new(),
            fired_deadlines: Vec::new(),
            fired_watchdogs: Vec::new(),
            node_subs: Vec::new(),
            orphan_dirty: BTreeSet::new(),
            tick_epoch: 0,
            counters: SchedCounters::default(),
            profiler: None,
            busy: HashSet::new(),
            held: BTreeMap::new(),
            dependents: BTreeMap::new(),
            done_ok: HashSet::new(),
            done_err: HashSet::new(),
            outcomes: BTreeMap::new(),
            root_errors: BTreeMap::new(),
            deadlines: BTreeMap::new(),
            watchdog: None,
            recovery: BTreeMap::new(),
            parked: BTreeMap::new(),
            trace: Vec::new(),
            idle_streak: 0,
            class_of: BTreeMap::new(),
            class_bills: BTreeMap::new(),
            retry_budgets: BTreeMap::new(),
        }
    }

    /// The scheduler mode this engine runs.
    #[must_use]
    pub fn mode(&self) -> SchedMode {
        self.mode
    }

    /// Always-on scheduler counters (step invocations, quanta, wakes,
    /// idle jumps). The bench harness' acceptance metric.
    #[must_use]
    pub fn counters(&self) -> &SchedCounters {
        &self.counters
    }

    /// Attach a self-profiling ring buffer of `capacity` samples; each
    /// pump quantum then records per-phase wall times (see
    /// [`SchedPhase`]). Off by default — profiling costs two `Instant`
    /// reads per phase per quantum.
    pub fn enable_profiling(&mut self, capacity: usize) {
        self.profiler = Some(SchedProfiler::new(capacity));
    }

    /// The attached profiler, if [`Engine::enable_profiling`] was
    /// called. Flush and read totals between runs, outside the hot path.
    pub fn profiler_mut(&mut self) -> Option<&mut SchedProfiler> {
        self.profiler.as_mut()
    }

    fn record(&mut self, m: &Machine, event: EngineEvent) {
        self.trace.push(TracedEvent { at: clock(m), event });
    }

    fn submit(&mut self, m: &Machine, op: OpKind) -> OpId {
        self.enqueue(m, op, &[]).expect("no dependencies to reject")
    }

    /// Shared submission path: validate the run-after edges, assign an
    /// id, then either release the operation into the admission queue or
    /// hold it until its predecessors complete.
    fn enqueue(&mut self, m: &Machine, op: OpKind, after: &[OpId]) -> Result<OpId, ProtocolError> {
        for dep in after {
            // Ids are handed out densely at submission, so any id at or
            // past `next_id` is a forward (or self) reference — the only
            // way a dependency cycle could ever be expressed.
            if dep.raw() >= self.next_id {
                return Err(ProtocolError::BadTransfer(format!(
                    "run-after dependency on op {} which this engine has not submitted; \
                     edges must point backward, so dependency cycles are rejected at submission",
                    dep.raw()
                )));
            }
        }
        let id = OpId(self.next_id);
        self.next_id += 1;
        self.record(m, EngineEvent::Submitted(id));
        // A predecessor that already failed fells the dependent at
        // submission — same outcome it would get if the failure happened
        // while it was held.
        if let Some(&failed) = after.iter().find(|d| self.done_err.contains(d)) {
            let root = self
                .root_errors
                .get(&failed)
                .cloned()
                .unwrap_or_else(|| ProtocolError::timeout("predecessor outcome", 0));
            self.settle(m, id, Err(ProtocolError::dependency_failed(failed, &root)));
            return Ok(id);
        }
        let waiting_on: HashSet<OpId> =
            after.iter().copied().filter(|d| !self.done_ok.contains(d)).collect();
        if waiting_on.is_empty() {
            self.record(m, EngineEvent::Released(id));
            self.pending.push_back(ActiveOp { id, op, last_progress_at: 0 });
        } else {
            for dep in &waiting_on {
                self.dependents.entry(*dep).or_default().push(id);
            }
            self.held.insert(
                id,
                HeldOp { op: ActiveOp { id, op, last_progress_at: 0 }, waiting_on },
            );
        }
        Ok(id)
    }

    /// Submit a finite-sequence transfer (the engine form of
    /// [`Machine::xfer`]).
    ///
    /// # Errors
    ///
    /// [`ProtocolError::BadTransfer`] for empty data.
    ///
    /// # Panics
    ///
    /// Panics if `src == dst` or either node is out of range.
    pub fn submit_xfer(
        &mut self,
        m: &Machine,
        src: NodeId,
        dst: NodeId,
        data: &[u32],
    ) -> Result<OpId, ProtocolError> {
        self.submit_xfer_with(m, src, dst, data, PayloadEngine::Cpu)
    }

    /// [`Engine::submit_xfer`] with run-after dependencies: the transfer
    /// is held until every operation in `after` completes successfully.
    ///
    /// # Errors
    ///
    /// [`ProtocolError::BadTransfer`] for empty data or a dependency on
    /// an id this engine has not submitted (forward references — the
    /// only way to express a cycle — are rejected at submission).
    ///
    /// # Panics
    ///
    /// Panics if `src == dst` or either node is out of range.
    pub fn submit_xfer_after(
        &mut self,
        m: &Machine,
        src: NodeId,
        dst: NodeId,
        data: &[u32],
        after: &[OpId],
    ) -> Result<OpId, ProtocolError> {
        assert_ne!(src, dst, "transfer endpoints must differ");
        assert!(src.index() < m.num_nodes() && dst.index() < m.num_nodes());
        if data.is_empty() {
            return Err(ProtocolError::BadTransfer("empty transfer".into()));
        }
        let n = m.config().packet_words;
        self.enqueue(
            m,
            OpKind::Xfer(XferOp::new(src, dst, data.to_vec(), PayloadEngine::Cpu, n)),
            after,
        )
    }

    pub(crate) fn submit_xfer_with(
        &mut self,
        m: &Machine,
        src: NodeId,
        dst: NodeId,
        data: &[u32],
        engine: PayloadEngine,
    ) -> Result<OpId, ProtocolError> {
        assert_ne!(src, dst, "transfer endpoints must differ");
        assert!(src.index() < m.num_nodes() && dst.index() < m.num_nodes());
        if data.is_empty() {
            return Err(ProtocolError::BadTransfer("empty transfer".into()));
        }
        let n = m.config().packet_words;
        Ok(self.submit(m, OpKind::Xfer(XferOp::new(src, dst, data.to_vec(), engine, n))))
    }

    /// Submit a fault-tolerant finite-sequence transfer (the engine form
    /// of [`Machine::xfer_reliable`]).
    ///
    /// # Errors
    ///
    /// [`ProtocolError::BadTransfer`] for empty or oversized data.
    ///
    /// # Panics
    ///
    /// Panics if `src == dst`, either node is out of range, or the
    /// policy allows zero attempts.
    pub fn submit_xfer_reliable(
        &mut self,
        m: &Machine,
        src: NodeId,
        dst: NodeId,
        data: &[u32],
        policy: &RetryPolicy,
    ) -> Result<OpId, ProtocolError> {
        self.submit_xfer_reliable_after(m, src, dst, data, policy, &[])
    }

    /// [`Engine::submit_xfer_reliable`] with run-after dependencies.
    ///
    /// # Errors
    ///
    /// [`ProtocolError::BadTransfer`] for empty or oversized data, or a
    /// dependency on an id this engine has not submitted.
    ///
    /// # Panics
    ///
    /// Panics if `src == dst`, either node is out of range, or the
    /// policy allows zero attempts.
    pub fn submit_xfer_reliable_after(
        &mut self,
        m: &Machine,
        src: NodeId,
        dst: NodeId,
        data: &[u32],
        policy: &RetryPolicy,
        after: &[OpId],
    ) -> Result<OpId, ProtocolError> {
        assert_ne!(src, dst, "transfer endpoints must differ");
        assert!(src.index() < m.num_nodes() && dst.index() < m.num_nodes());
        assert!(policy.max_attempts >= 1, "need at least one attempt");
        if data.is_empty() {
            return Err(ProtocolError::BadTransfer("empty transfer".into()));
        }
        if data.len() >= (1 << OFFSET_BITS) {
            return Err(ProtocolError::BadTransfer(format!(
                "reliable transfer caps at {} words, got {}",
                (1 << OFFSET_BITS) - 1,
                data.len()
            )));
        }
        let n = m.config().packet_words;
        self.enqueue(
            m,
            OpKind::Reliable(ReliableOp::new(src, dst, data.to_vec(), n, policy.clone())),
            after,
        )
    }

    /// Submit a stream send (the engine form of
    /// [`Machine::stream_send`]). Sends on the same stream (or between
    /// the same node pair) are serialized in submission order.
    ///
    /// # Errors
    ///
    /// [`ProtocolError::BadTransfer`] for empty data.
    ///
    /// # Panics
    ///
    /// Panics if `id` is stale.
    pub fn submit_stream_send(
        &mut self,
        m: &Machine,
        id: StreamId,
        data: &[u32],
    ) -> Result<OpId, ProtocolError> {
        self.submit_stream_send_after(m, id, data, &[])
    }

    /// [`Engine::submit_stream_send`] with run-after dependencies.
    ///
    /// # Errors
    ///
    /// [`ProtocolError::BadTransfer`] for empty data or a dependency on
    /// an id this engine has not submitted.
    ///
    /// # Panics
    ///
    /// Panics if `id` is stale.
    pub fn submit_stream_send_after(
        &mut self,
        m: &Machine,
        id: StreamId,
        data: &[u32],
        after: &[OpId],
    ) -> Result<OpId, ProtocolError> {
        if data.is_empty() {
            return Err(ProtocolError::BadTransfer("empty stream send".into()));
        }
        let st = m.stream_state(id);
        let n = m.config().packet_words;
        self.enqueue(
            m,
            OpKind::Stream(StreamOp::new(id, st.src, st.dst, data.to_vec(), n, st.rto_iterations())),
            after,
        )
    }

    /// Submit an RPC (the engine form of [`Machine::rpc_call`] without a
    /// policy, [`Machine::rpc_call_retrying`] with one). The call id is
    /// allocated at submission, so replies of concurrent calls — even
    /// between the same pair of nodes — are matched by correlation id.
    ///
    /// # Panics
    ///
    /// Panics if `src == dst`, either node is out of range, or a policy
    /// allows zero attempts.
    pub fn submit_rpc(
        &mut self,
        m: &mut Machine,
        src: NodeId,
        dst: NodeId,
        tag: u8,
        args: [u32; 4],
        policy: Option<&RetryPolicy>,
    ) -> OpId {
        assert_ne!(src, dst, "rpc endpoints must differ");
        assert!(src.index() < m.num_nodes() && dst.index() < m.num_nodes());
        if let Some(p) = policy {
            assert!(p.max_attempts >= 1, "need at least one attempt");
        }
        let call_id = m.alloc_call_id();
        self.submit(m, OpKind::Rpc(RpcOp::new(src, dst, tag, args, call_id, policy.cloned(), false)))
    }

    /// [`Engine::submit_rpc`] with run-after dependencies.
    ///
    /// # Errors
    ///
    /// [`ProtocolError::BadTransfer`] for a dependency on an id this
    /// engine has not submitted.
    ///
    /// # Panics
    ///
    /// Panics if `src == dst`, either node is out of range, or a policy
    /// allows zero attempts.
    #[allow(clippy::too_many_arguments)]
    pub fn submit_rpc_after(
        &mut self,
        m: &mut Machine,
        src: NodeId,
        dst: NodeId,
        tag: u8,
        args: [u32; 4],
        policy: Option<&RetryPolicy>,
        after: &[OpId],
    ) -> Result<OpId, ProtocolError> {
        assert_ne!(src, dst, "rpc endpoints must differ");
        assert!(src.index() < m.num_nodes() && dst.index() < m.num_nodes());
        if let Some(p) = policy {
            assert!(p.max_attempts >= 1, "need at least one attempt");
        }
        let call_id = m.alloc_call_id();
        self.enqueue(
            m,
            OpKind::Rpc(RpcOp::new(src, dst, tag, args, call_id, policy.cloned(), false)),
            after,
        )
    }

    /// Submit a single four-word active message (the engine form of
    /// [`Machine::am4_send`] plus the destination's gated poll). The
    /// source pays Table 1's 20-instruction injection path (again on
    /// every backpressure retry, exactly like the blocking call); the
    /// destination pays the 27-instruction poll-with-message path when
    /// the packet is latched — never an idle poll, because consumption
    /// is peek-gated. The outcome carries the words the destination
    /// read ([`OpOutcome::Am4`]).
    ///
    /// Messages between the same ordered pair are serialized in
    /// submission order (conflict key), so two concurrent sends with the
    /// same tag cannot swap deliveries.
    ///
    /// # Errors
    ///
    /// [`ProtocolError::BadTransfer`] for a reserved (protocol-range)
    /// tag.
    ///
    /// # Panics
    ///
    /// Panics if `src == dst` or either node is out of range.
    pub fn submit_am4(
        &mut self,
        m: &Machine,
        src: NodeId,
        dst: NodeId,
        tag: u8,
        words: [u32; 4],
    ) -> Result<OpId, ProtocolError> {
        self.submit_am4_after(m, src, dst, tag, words, &[])
    }

    /// [`Engine::submit_am4`] with run-after dependencies — the building
    /// block of engine-native collectives, where every tree edge is one
    /// active message released by the delivery that fed its sender.
    ///
    /// # Errors
    ///
    /// [`ProtocolError::BadTransfer`] for a reserved tag or a dependency
    /// on an id this engine has not submitted.
    ///
    /// # Panics
    ///
    /// Panics if `src == dst` or either node is out of range.
    pub fn submit_am4_after(
        &mut self,
        m: &Machine,
        src: NodeId,
        dst: NodeId,
        tag: u8,
        words: [u32; 4],
        after: &[OpId],
    ) -> Result<OpId, ProtocolError> {
        assert_ne!(src, dst, "am4 endpoints must differ");
        assert!(src.index() < m.num_nodes() && dst.index() < m.num_nodes());
        if tag < Tags::USER_BASE {
            return Err(ProtocolError::BadTransfer(format!(
                "am4 tag {tag} is in the reserved protocol range (< {})",
                Tags::USER_BASE
            )));
        }
        self.enqueue(m, OpKind::Am4(Am4Op::new(src, dst, tag, words, 0, false)), after)
    }

    // -----------------------------------------------------------------
    // Engine-native recovery: `submit_*_recovering` variants.
    // -----------------------------------------------------------------

    /// Arm engine-native recovery for an already-submitted operation.
    ///
    /// # Panics
    ///
    /// Panics if the policy allows zero executions.
    fn arm_recovery(&mut self, id: OpId, spec: OpSpec, policy: &RecoveryPolicy) {
        assert!(policy.max_executions >= 1, "need at least one execution");
        if policy.max_executions > 1 {
            self.recovery.insert(
                id,
                RecoveryState { spec, policy: policy.clone(), re_executions: 0 },
            );
        }
    }

    /// [`Engine::submit_xfer_reliable`] with an attached
    /// [`RecoveryPolicy`]: if the transfer settles with a retryable
    /// error (`SessionReset`, `Timeout`, `DeadlineExceeded`), the
    /// scheduler itself re-executes it under a fresh session epoch
    /// after the policy's backoff window — no caller-side loop. Each
    /// re-execution bills the session-restart instruction shape to
    /// `Feature::FaultTol` at the source; a clean run is
    /// instruction-identical to [`Engine::submit_xfer_reliable`].
    ///
    /// # Errors
    ///
    /// [`ProtocolError::BadTransfer`] for empty or oversized data.
    ///
    /// # Panics
    ///
    /// Panics if `src == dst`, either node is out of range, or either
    /// policy allows zero attempts/executions.
    pub fn submit_xfer_reliable_recovering(
        &mut self,
        m: &Machine,
        src: NodeId,
        dst: NodeId,
        data: &[u32],
        policy: &RetryPolicy,
        recovery: &RecoveryPolicy,
    ) -> Result<OpId, ProtocolError> {
        self.submit_xfer_reliable_recovering_after(m, src, dst, data, policy, recovery, &[])
    }

    /// [`Engine::submit_xfer_reliable_recovering`] with run-after
    /// dependencies. Because the op keeps its `OpId` across
    /// re-executions, dependents stay held while it recovers and
    /// release when it finally succeeds — a recovered predecessor does
    /// *not* cascade [`ProtocolError::DependencyFailed`].
    ///
    /// # Errors
    ///
    /// [`ProtocolError::BadTransfer`] for empty or oversized data, or a
    /// dependency on an id this engine has not submitted.
    ///
    /// # Panics
    ///
    /// Panics if `src == dst`, either node is out of range, or either
    /// policy allows zero attempts/executions.
    #[allow(clippy::too_many_arguments)]
    pub fn submit_xfer_reliable_recovering_after(
        &mut self,
        m: &Machine,
        src: NodeId,
        dst: NodeId,
        data: &[u32],
        policy: &RetryPolicy,
        recovery: &RecoveryPolicy,
        after: &[OpId],
    ) -> Result<OpId, ProtocolError> {
        let id = self.submit_xfer_reliable_after(m, src, dst, data, policy, after)?;
        let n = m.config().packet_words;
        self.arm_recovery(
            id,
            OpSpec::Reliable { src, dst, data: data.to_vec(), n, policy: policy.clone() },
            recovery,
        );
        Ok(id)
    }

    /// [`Engine::submit_stream_send`] with an attached
    /// [`RecoveryPolicy`]. A re-execution *resumes* the burst instead
    /// of restarting it: packets the receiver already delivered
    /// in-sequence are not re-sent, so the stream stays exactly-once
    /// and byte-exact across sender or receiver crash-restarts.
    ///
    /// # Errors
    ///
    /// [`ProtocolError::BadTransfer`] for empty data.
    ///
    /// # Panics
    ///
    /// Panics if `id` is stale or the policy allows zero executions.
    pub fn submit_stream_send_recovering(
        &mut self,
        m: &Machine,
        id: StreamId,
        data: &[u32],
        recovery: &RecoveryPolicy,
    ) -> Result<OpId, ProtocolError> {
        self.submit_stream_send_recovering_after(m, id, data, recovery, &[])
    }

    /// [`Engine::submit_stream_send_recovering`] with run-after
    /// dependencies.
    ///
    /// # Errors
    ///
    /// [`ProtocolError::BadTransfer`] for empty data or a dependency on
    /// an id this engine has not submitted.
    ///
    /// # Panics
    ///
    /// Panics if `id` is stale or the policy allows zero executions.
    pub fn submit_stream_send_recovering_after(
        &mut self,
        m: &Machine,
        id: StreamId,
        data: &[u32],
        recovery: &RecoveryPolicy,
        after: &[OpId],
    ) -> Result<OpId, ProtocolError> {
        let op = self.submit_stream_send_after(m, id, data, after)?;
        let st = m.stream_state(id);
        let n = m.config().packet_words;
        self.arm_recovery(
            op,
            OpSpec::Stream {
                id,
                src: st.src,
                dst: st.dst,
                data: data.to_vec(),
                n,
                rto_iterations: st.rto_iterations(),
                base_seq: None,
            },
            recovery,
        );
        Ok(op)
    }

    /// [`Engine::submit_rpc`] with an attached [`RecoveryPolicy`]. A
    /// re-execution reuses the original call id, so if the callee's
    /// handler already ran, its reply cache answers the re-sent request
    /// as a duplicate — the handler executes at most once per callee
    /// incarnation (a callee crash-restart legitimately re-runs it on
    /// the fresh incarnation, which is what the restart erased).
    ///
    /// # Panics
    ///
    /// Panics if `src == dst`, either node is out of range, or either
    /// policy allows zero attempts/executions.
    #[allow(clippy::too_many_arguments)]
    pub fn submit_rpc_recovering(
        &mut self,
        m: &mut Machine,
        src: NodeId,
        dst: NodeId,
        tag: u8,
        args: [u32; 4],
        policy: Option<&RetryPolicy>,
        recovery: &RecoveryPolicy,
    ) -> OpId {
        self.submit_rpc_recovering_after(m, src, dst, tag, args, policy, recovery, &[])
            .expect("no dependencies to reject")
    }

    /// [`Engine::submit_rpc_recovering`] with run-after dependencies.
    ///
    /// # Errors
    ///
    /// [`ProtocolError::BadTransfer`] for a dependency on an id this
    /// engine has not submitted.
    ///
    /// # Panics
    ///
    /// Panics if `src == dst`, either node is out of range, or either
    /// policy allows zero attempts/executions.
    #[allow(clippy::too_many_arguments)]
    pub fn submit_rpc_recovering_after(
        &mut self,
        m: &mut Machine,
        src: NodeId,
        dst: NodeId,
        tag: u8,
        args: [u32; 4],
        policy: Option<&RetryPolicy>,
        recovery: &RecoveryPolicy,
        after: &[OpId],
    ) -> Result<OpId, ProtocolError> {
        assert_ne!(src, dst, "rpc endpoints must differ");
        assert!(src.index() < m.num_nodes() && dst.index() < m.num_nodes());
        if let Some(p) = policy {
            assert!(p.max_attempts >= 1, "need at least one attempt");
        }
        let call_id = m.alloc_call_id();
        let id = self.enqueue(
            m,
            OpKind::Rpc(RpcOp::new(src, dst, tag, args, call_id, policy.cloned(), true)),
            after,
        )?;
        self.arm_recovery(
            id,
            OpSpec::Rpc { src, dst, tag, args, call_id, policy: policy.cloned() },
            recovery,
        );
        Ok(id)
    }

    /// [`Engine::submit_am4`] with an attached [`RecoveryPolicy`] — the
    /// building block of recovering collectives. The message rides a
    /// nonzero *delivery token* in the header word (plain user traffic
    /// always carries header `0`): consumption is token-gated, so a
    /// duplicate left by a crash-straddling re-execution can never be
    /// mistaken for a later same-pair message and is orphan-discarded
    /// once its operation completes.
    ///
    /// # Errors
    ///
    /// [`ProtocolError::BadTransfer`] for a reserved (protocol-range)
    /// tag.
    ///
    /// # Panics
    ///
    /// Panics if `src == dst`, either node is out of range, or the
    /// policy allows zero executions.
    pub fn submit_am4_recovering(
        &mut self,
        m: &mut Machine,
        src: NodeId,
        dst: NodeId,
        tag: u8,
        words: [u32; 4],
        recovery: &RecoveryPolicy,
    ) -> Result<OpId, ProtocolError> {
        self.submit_am4_recovering_after(m, src, dst, tag, words, recovery, &[])
    }

    /// [`Engine::submit_am4_recovering`] with run-after dependencies.
    ///
    /// # Errors
    ///
    /// [`ProtocolError::BadTransfer`] for a reserved tag or a dependency
    /// on an id this engine has not submitted.
    ///
    /// # Panics
    ///
    /// Panics if `src == dst`, either node is out of range, or the
    /// policy allows zero executions.
    #[allow(clippy::too_many_arguments)]
    pub fn submit_am4_recovering_after(
        &mut self,
        m: &mut Machine,
        src: NodeId,
        dst: NodeId,
        tag: u8,
        words: [u32; 4],
        recovery: &RecoveryPolicy,
        after: &[OpId],
    ) -> Result<OpId, ProtocolError> {
        assert_ne!(src, dst, "am4 endpoints must differ");
        assert!(src.index() < m.num_nodes() && dst.index() < m.num_nodes());
        if tag < Tags::USER_BASE {
            return Err(ProtocolError::BadTransfer(format!(
                "am4 tag {tag} is in the reserved protocol range (< {})",
                Tags::USER_BASE
            )));
        }
        // Allocated from the same counter as RPC call ids; the high bit
        // keeps it nonzero, which is what distinguishes a recovery-
        // stamped message from plain header-0 user traffic.
        let token = (m.alloc_call_id() as u32) | 0x8000_0000;
        let id = self.enqueue(m, OpKind::Am4(Am4Op::new(src, dst, tag, words, token, true)), after)?;
        self.arm_recovery(id, OpSpec::Am4 { src, dst, tag, words, token }, recovery);
        Ok(id)
    }

    /// How many engine-native re-executions `id` has undergone so far
    /// (0 for clean runs and for ops submitted without a
    /// [`RecoveryPolicy`]). Stays answerable after the op settles.
    #[must_use]
    pub fn recovery_executions(&self, id: OpId) -> u32 {
        self.recovery.get(&id).map_or(0, |s| s.re_executions)
    }

    /// Number of operations currently parked between recovery
    /// executions (waiting out a backoff window).
    #[must_use]
    pub fn parked_count(&self) -> usize {
        self.parked.len()
    }

    /// Number of operations not yet finished (held operations and ops
    /// parked between recovery executions included).
    #[must_use]
    pub fn unfinished(&self) -> usize {
        self.pending.len() + self.run_order.len() + self.held.len() + self.parked.len()
    }

    /// Number of operations currently held behind unfinished run-after
    /// predecessors.
    #[must_use]
    pub fn held_count(&self) -> usize {
        self.held.len()
    }

    /// The scheduler trace so far, every event stamped with the
    /// substrate clock at the moment it was recorded.
    #[must_use]
    pub fn trace(&self) -> &[TracedEvent] {
        &self.trace
    }

    /// Per-operation completion times derived from the cycle-stamped
    /// trace: for every operation that has completed (successfully or
    /// not), the network cycles from its `Submitted` event to its
    /// `Completed` event.
    ///
    /// Submission — not admission — anchors the interval, so for
    /// operations queued behind a busy conflict key the reported time
    /// includes the queueing delay. That is deliberate: under an
    /// open-loop offered load this is the latency an injected operation
    /// actually experiences. The same holds for run-after dependencies:
    /// cycles an operation spends **held** behind unfinished
    /// predecessors are *included* in its completion time — the trace's
    /// `Released` stamps (see [`Engine::hold_times`]) let a caller
    /// subtract the held span when it wants pure execution latency.
    #[must_use]
    pub fn completion_times(&self) -> Vec<(OpId, u64)> {
        let mut submitted: BTreeMap<OpId, u64> = BTreeMap::new();
        let mut out = Vec::new();
        for e in &self.trace {
            match e.event {
                EngineEvent::Submitted(id) => {
                    submitted.insert(id, e.at);
                }
                EngineEvent::Completed(id, _) => {
                    if let Some(&at) = submitted.get(&id) {
                        out.push((id, e.at.saturating_sub(at)));
                    }
                }
                _ => {}
            }
        }
        out
    }

    /// Per-operation hold times derived from the cycle-stamped trace:
    /// for every operation that was released, the network cycles from
    /// its `Submitted` event to its `Released` event. Operations
    /// submitted with no outstanding dependencies report `0` (they are
    /// released immediately); operations failed before release (a
    /// predecessor failed, or the wedge backstop fired) do not appear.
    #[must_use]
    pub fn hold_times(&self) -> Vec<(OpId, u64)> {
        let mut submitted: BTreeMap<OpId, u64> = BTreeMap::new();
        let mut out = Vec::new();
        for e in &self.trace {
            match e.event {
                EngineEvent::Submitted(id) => {
                    submitted.insert(id, e.at);
                }
                EngineEvent::Released(id) => {
                    if let Some(&at) = submitted.get(&id) {
                        out.push((id, e.at.saturating_sub(at)));
                    }
                }
                _ => {}
            }
        }
        out
    }

    /// The [`completion_times`](Engine::completion_times) distribution
    /// folded into a [`LatencyStats`] histogram, ready for percentile
    /// queries (`quantile(0.99)` etc.).
    #[must_use]
    pub fn completion_stats(&self) -> LatencyStats {
        let mut stats = LatencyStats::default();
        for (_, cycles) in self.completion_times() {
            stats.record(cycles);
        }
        stats
    }

    /// Tag a submitted operation with a *request class* (QoS tier,
    /// tenant, priority band — any `u8` the caller chooses). From that
    /// point every instruction the operation causes at either of its
    /// endpoints — admission `start`, every `step` (including callee
    /// handler work an RPC drives at its destination), and
    /// engine-native recovery restarts — is *also* accumulated into
    /// that class's [`CostVector`], splitting the per-node bills by
    /// class. The split is attribution, not double-billing: the node
    /// recorders are untouched, and on clean runs the per-class bills
    /// sum exactly to the total the node recorders saw (see
    /// `tests/serving_invariants.rs`).
    ///
    /// Tag an operation immediately after submission, before the pump
    /// admits it — cost billed before the tag lands is not
    /// re-attributed. Untagged operations are never snapshotted, and a
    /// fully untagged engine skips the class plane entirely.
    pub fn set_class(&mut self, id: OpId, class: u8) {
        self.class_of.insert(id, class);
    }

    /// The class tag assigned to `id` via [`Engine::set_class`], if any.
    #[must_use]
    pub fn class_of(&self, id: OpId) -> Option<u8> {
        self.class_of.get(&id).copied()
    }

    /// The accumulated cost attributed to `class` — the Table-1/2/3
    /// projection for one request class. Empty if the class was never
    /// billed.
    #[must_use]
    pub fn class_bill(&self, class: u8) -> CostVector {
        self.class_bills.get(&class).cloned().unwrap_or_default()
    }

    /// Every `(class, bill)` pair accumulated so far, ascending by
    /// class.
    #[must_use]
    pub fn class_bills(&self) -> Vec<(u8, CostVector)> {
        self.class_bills.iter().map(|(&c, v)| (c, v.clone())).collect()
    }

    /// [`Engine::completion_times`] restricted to operations tagged
    /// with `class`.
    #[must_use]
    pub fn completion_times_for_class(&self, class: u8) -> Vec<(OpId, u64)> {
        self.completion_times()
            .into_iter()
            .filter(|(id, _)| self.class_of.get(id) == Some(&class))
            .collect()
    }

    /// [`Engine::completion_stats`] restricted to operations tagged
    /// with `class`.
    #[must_use]
    pub fn completion_stats_for_class(&self, class: u8) -> LatencyStats {
        let mut stats = LatencyStats::default();
        for (_, cycles) in self.completion_times_for_class(class) {
            stats.record(cycles);
        }
        stats
    }

    /// Arm a *retry budget* for `class`: a token bucket holding at most
    /// `capacity` re-execution tokens, refilled at
    /// `refill_milli_per_kcycle` milli-tokens per thousand substrate
    /// cycles (1000 = one full re-execution per kilocycle). Every
    /// engine-native re-execution of an op tagged with `class` (via
    /// [`Engine::set_class`]) spends one token *before* parking; when
    /// the bucket is dry the recovery is **denied** — the op settles
    /// with its retryable error exactly as if its
    /// [`RecoveryPolicy`] budget were exhausted — and the denial is
    /// counted ([`Engine::retry_budget_denied`]).
    ///
    /// This is the serving plane's cap on *recovery amplification*: a
    /// correlated failure (a crashed server absorbing a whole class's
    /// requests) otherwise multiplies every request into
    /// `max_executions` attempts at the worst possible time. The bucket
    /// starts full. Re-arming a class resets its bucket and counter.
    /// Ops of classes without a budget — and untagged ops — are never
    /// consulted.
    pub fn set_retry_budget(&mut self, class: u8, capacity: u32, refill_milli_per_kcycle: u32) {
        self.retry_budgets.insert(
            class,
            RetryBudgetState {
                capacity_milli: u64::from(capacity) * 1000,
                refill_milli_per_kcycle: u64::from(refill_milli_per_kcycle),
                tokens_milli: u64::from(capacity) * 1000,
                last_spend_at: 0,
                denied: 0,
            },
        );
    }

    /// How many re-executions the retry budget of `class` has denied so
    /// far (0 for classes without a budget).
    #[must_use]
    pub fn retry_budget_denied(&self, class: u8) -> u64 {
        self.retry_budgets.get(&class).map_or(0, |b| b.denied)
    }

    /// Spend one re-execution token from `id`'s class budget, if its
    /// class carries one. Returns `false` — and counts the denial — if
    /// the bucket is dry; the caller then lets the failure settle.
    fn charge_retry_budget(&mut self, m: &Machine, id: OpId) -> bool {
        if self.retry_budgets.is_empty() {
            return true;
        }
        let Some(&class) = self.class_of.get(&id) else { return true };
        let Some(b) = self.retry_budgets.get_mut(&class) else { return true };
        let now = clock(m);
        let available = b.available_milli(now);
        if available < 1000 {
            b.denied += 1;
            return false;
        }
        b.tokens_milli = available - 1000;
        b.last_spend_at = now;
        true
    }

    /// Incremental completion harvest: every `Completed` trace event
    /// recorded since `cursor`, as `(id, ok, at)` tuples, advancing
    /// `cursor` to the end of the trace. This is the first-win
    /// primitive for drivers racing several submissions for one logical
    /// request (hedging): harvest after each pump, settle the request
    /// on its first successful leg, and [`Engine::cancel`] the losers —
    /// whose cancellations then show up in the *next* harvest.
    pub fn completions_since(&self, cursor: &mut usize) -> Vec<(OpId, bool, u64)> {
        let mut out = Vec::new();
        for e in &self.trace[*cursor..] {
            if let EngineEvent::Completed(id, ok) = e.event {
                out.push((id, ok, e.at));
            }
        }
        *cursor = self.trace.len();
        out
    }

    /// Pre-step snapshot for the class plane: if `id` is tagged, the
    /// cost recorders at both endpoints as they stand *before* the
    /// about-to-run `start`/`step`. `None` (the untagged and
    /// class-plane-off cases) makes the post hook free.
    fn class_pre(
        &self,
        m: &Machine,
        id: OpId,
        endpoints: (NodeId, NodeId),
    ) -> Option<(u8, CostVector, CostVector)> {
        if self.class_of.is_empty() {
            return None;
        }
        let &class = self.class_of.get(&id)?;
        Some((class, m.cpu(endpoints.0).snapshot(), m.cpu(endpoints.1).snapshot()))
    }

    /// Post-step accumulation: whatever the endpoints' recorders gained
    /// since `pre` is credited to the op's class. Single-threaded
    /// stepping means the delta is exactly the cost this op caused.
    fn class_post(
        &mut self,
        m: &Machine,
        pre: Option<(u8, CostVector, CostVector)>,
        endpoints: (NodeId, NodeId),
    ) {
        let Some((class, before_a, before_b)) = pre else { return };
        let mut delta = m.cpu(endpoints.0).snapshot() - before_a;
        if endpoints.1 != endpoints.0 {
            delta += m.cpu(endpoints.1).snapshot() - before_b;
        }
        if !delta.is_empty() {
            *self.class_bills.entry(class).or_default() += delta;
        }
    }

    /// Take the outcome of a finished operation (at most once).
    pub fn take_outcome(&mut self, id: OpId) -> Option<Result<OpOutcome, ProtocolError>> {
        self.outcomes.remove(&id)
    }

    /// Drive every submitted operation to completion (success or
    /// error), interleaving all of them over the machine's substrate.
    /// Outcomes are collected per [`OpId`]; an individual operation's
    /// failure does not abort the others.
    pub fn run(&mut self, m: &mut Machine) {
        self.idle_streak = 0;
        while self.unfinished() > 0 {
            self.pump(m);
        }
    }

    /// One scheduler quantum: admit pending operations, sweep every
    /// running state machine until none can make further progress
    /// without time passing, then advance the substrate exactly one
    /// cycle and deliver timer ticks. Returns the number of operations
    /// still unfinished.
    ///
    /// This is the open-loop building block: a paced driver alternates
    /// `pump` with `submit_*` calls to inject new operations at a
    /// controlled offered rate while earlier ones are still in flight
    /// ([`Engine::run`] is just `pump` until nothing is left). When the
    /// engine is empty, `pump` advances the clock one cycle so a driver
    /// waiting for its next injection slot still makes time pass.
    pub fn pump(&mut self, m: &mut Machine) -> usize {
        match self.mode {
            SchedMode::EventDriven => self.pump_event(m),
            SchedMode::ReferenceRoundRobin => self.pump_reference(m),
        }
    }

    /// The retained reference scheduler: round-robin every running op
    /// each pass, scan every deadline and watchdog, `advance(1)` when
    /// nothing progresses. The `sched_equivalence` soak pins the
    /// event-driven scheduler's trace and bills against this.
    fn pump_reference(&mut self, m: &mut Machine) -> usize {
        self.counters.quanta += 1;
        if self.unfinished() == 0 {
            m.advance(1);
            self.counters.advances += 1;
            return 0;
        }
        // Fold any node crash-restarts into protocol state before
        // stepping: erase the crashed endpoint's sessions and caches so
        // the ops observe the restart, not ghosts of the old incarnation.
        m.observe_restarts();
        // Receiver-side GC: epoch-TTL sweep of dead sessions and
        // expired reply-cache entries. Tables owned by live operations
        // are exempt; a clean run sweeps (and bills) nothing.
        self.collect_garbage(m);
        loop {
            if self.supervise_reference(m) {
                continue;
            }
            self.release_recovered(m);
            self.admit(m);
            if self.run_order.is_empty() {
                if let Some(&resume_at) = self.parked.values().min() {
                    // Nothing is runnable until a parked op's backoff
                    // window closes: jump the clock there and let the
                    // next iteration re-admit it.
                    let now = clock(m);
                    if resume_at > now {
                        m.advance(resume_at - now);
                        self.counters.advances += 1;
                    }
                    continue;
                }
                if self.pending.is_empty() {
                    // A held op always has a live predecessor somewhere
                    // in running/pending/parked (release and failure
                    // both move it out of `held` when the last one
                    // settles), so nothing can be held here; sweep
                    // defensively rather than spin if that invariant
                    // ever breaks.
                    while let Some(&id) = self.held.keys().next() {
                        self.held.remove(&id);
                        let streak = self.idle_streak;
                        self.settle(
                            m,
                            id,
                            Err(ProtocolError::timeout("engine progress", streak)),
                        );
                    }
                    return 0;
                }
                // Pending ops blocked on keys held by nothing running:
                // impossible, but don't spin.
                unreachable!("pending operations with no running key holder");
            }
            let mut progressed = false;
            let mut i = 0;
            let now = clock(m);
            self.counters.passes += 1;
            while i < self.run_order.len() {
                let slot = self.run_order[i];
                self.counters.steps += 1;
                let cls = self.class_pre(
                    m,
                    self.slots[slot].a.id,
                    self.slots[slot].a.op.endpoints(),
                );
                let stepped = self.slots[slot].a.op.step(m);
                if cls.is_some() {
                    let endpoints = self.slots[slot].a.op.endpoints();
                    self.class_post(m, cls, endpoints);
                }
                match stepped {
                    Ok(Stepped::Progress) => {
                        let id = self.slots[slot].a.id;
                        self.slots[slot].a.last_progress_at = now;
                        self.record(m, EngineEvent::Progressed(id));
                        progressed = true;
                        i += 1;
                    }
                    Ok(Stepped::Idle) => i += 1,
                    Ok(Stepped::Done(out)) => {
                        self.finish(m, i, Ok(out));
                        progressed = true;
                    }
                    Err(e) => {
                        self.finish(m, i, Err(e));
                        progressed = true;
                    }
                }
            }
            if progressed {
                self.idle_streak = 0;
                continue;
            }
            if self.discard_orphan(m) {
                continue;
            }
            m.advance(1);
            self.counters.advances += 1;
            for i in 0..self.run_order.len() {
                let slot = self.run_order[i];
                self.slots[slot].a.op.tick();
            }
            self.idle_streak += 1;
            // No global wedge backstop here: the per-op watchdog in
            // `supervise_reference` settles individual no-progress
            // operations with a retryable `DeadlineExceeded` instead of
            // failing the whole engine at once.
            return self.unfinished();
        }
    }

    /// The readiness-driven scheduler. Same observable semantics as
    /// [`Engine::pump_reference`] — identical trace, identical
    /// per-feature bills — reached with far fewer op steps:
    ///
    /// * an op whose step returns `Idle` goes to *sleep* on its wake
    ///   conditions (packet activity at its endpoints, or the earliest
    ///   cycle a timer tick could change its behavior) and is skipped by
    ///   the sweep until one fires;
    /// * deadlines, watchdogs, and park-resume markers ride the timing
    ///   wheel instead of being scanned every quantum;
    /// * when nothing is runnable and the fabric is empty, the clock
    ///   jumps straight to the next wheel event (never overshooting a
    ///   scripted crash-restart), and sleepers are lazily ticked the
    ///   whole distance on wake.
    ///
    /// Sleeping is *conservative*: a spurious wake costs one cost-free
    /// `Idle` step, while the wake conditions are chosen so an op can
    /// never sleep through a step the reference would have made
    /// non-idle. That is what makes the two schedulers
    /// trace-equivalent.
    fn pump_event(&mut self, m: &mut Machine) -> usize {
        self.counters.quanta += 1;
        if self.unfinished() == 0 {
            m.advance(1);
            self.counters.advances += 1;
            return 0;
        }
        // Restart folding first, same slot the reference gives it; ops
        // subscribed at a restarted endpoint wake so their next step
        // observes the `SessionReset`.
        for node in m.observe_restarts() {
            self.touch_node(node);
        }
        let t = self.profiler.as_ref().map(|_| Instant::now());
        self.absorb_wakes(m);
        self.profile(SchedPhase::WheelAdvance, t);
        self.collect_garbage(m);
        loop {
            if self.supervise_event(m) {
                continue;
            }
            self.release_recovered(m);
            self.admit(m);
            // Collect clock-free delivery marks (self-sends during
            // `start`, same-cycle fast paths) so sleepers subscribed at
            // those nodes join the coming pass.
            self.absorb_wakes(m);
            if self.run_order.is_empty() {
                if let Some(&resume_at) = self.parked.values().min() {
                    // Identical to the reference (which also defers
                    // restart folding to the next pump top); the wheel
                    // catches up so deadlines due inside the jumped
                    // window fire on this iteration.
                    let now = clock(m);
                    if resume_at > now {
                        m.advance(resume_at - now);
                        self.counters.advances += 1;
                    }
                    self.absorb_wakes(m);
                    continue;
                }
                if self.pending.is_empty() {
                    while let Some(&id) = self.held.keys().next() {
                        self.held.remove(&id);
                        let streak = self.idle_streak;
                        self.settle(
                            m,
                            id,
                            Err(ProtocolError::timeout("engine progress", streak)),
                        );
                    }
                    return 0;
                }
                unreachable!("pending operations with no running key holder");
            }
            let mut progressed = false;
            let mut i = 0;
            let now = clock(m);
            let bound = self.watchdog.unwrap_or(4 * m.config().max_wait_cycles);
            self.counters.passes += 1;
            let pass_t = self.profiler.as_ref().map(|_| Instant::now());
            let mut step_ns: u64 = 0;
            while i < self.run_order.len() {
                let slot = self.run_order[i];
                // Visit-time readiness: an op woken by an earlier op's
                // progress in this pass is stepped *in this pass* —
                // exactly when the reference sweep would reach it.
                if !self.slots[slot].ready {
                    i += 1;
                    continue;
                }
                self.counters.steps += 1;
                let st = self.profiler.as_ref().map(|_| Instant::now());
                let clock_before = clock(m);
                let cls = self.class_pre(
                    m,
                    self.slots[slot].a.id,
                    self.slots[slot].a.op.endpoints(),
                );
                let stepped = self.slots[slot].a.op.step(m);
                if cls.is_some() {
                    let endpoints = self.slots[slot].a.op.endpoints();
                    self.class_post(m, cls, endpoints);
                }
                // Blocking NI waits inside a step advance the substrate
                // clock mid-pass, delivering packets along the way.
                // Absorb those wakes immediately so sleepers at the
                // affected nodes are ready exactly when the reference
                // sweep (which re-steps everyone) would next reach them.
                // Note this burns *clock*, not tick epochs: the
                // reference never ticks ops for in-step cycles.
                if clock(m) != clock_before {
                    self.absorb_wakes(m);
                }
                if let Some(st) = st {
                    step_ns += st.elapsed().as_nanos() as u64;
                }
                match stepped {
                    Ok(Stepped::Progress) => {
                        let id = self.slots[slot].a.id;
                        self.slots[slot].a.last_progress_at = now;
                        self.slots[slot].wd_due =
                            now.saturating_add(bound).saturating_add(1);
                        self.record(m, EngineEvent::Progressed(id));
                        // Progress may have consumed or injected at the
                        // endpoints, revealing queued packets there:
                        // wake the subscribers and mark the orphan
                        // sweep.
                        let (ea, eb) = self.slots[slot].a.op.endpoints();
                        self.touch_node(ea);
                        self.touch_node(eb);
                        progressed = true;
                        i += 1;
                    }
                    Ok(Stepped::Idle) => {
                        self.sleep_slot(m, slot);
                        i += 1;
                    }
                    Ok(Stepped::Done(out)) => {
                        self.finish(m, i, Ok(out));
                        progressed = true;
                    }
                    Err(e) => {
                        self.finish(m, i, Err(e));
                        progressed = true;
                    }
                }
            }
            if let Some(pt) = pass_t {
                let total = pt.elapsed().as_nanos() as u64;
                if let Some(p) = self.profiler.as_mut() {
                    p.record(SchedPhase::OpStep, step_ns);
                    p.record(SchedPhase::ReadyPop, total.saturating_sub(step_ns));
                }
            }
            if progressed {
                self.idle_streak = 0;
                continue;
            }
            if self.discard_orphan_event(m) {
                continue;
            }
            // Every running op is now asleep (a ready op either
            // progressed — and we looped — or idled and slept). With
            // traffic in flight a delivery can wake someone next cycle;
            // with the fabric empty nothing observable happens before
            // the next wheel event, so jump the clock straight there.
            let jump = self.idle_jump(m);
            let t = self.profiler.as_ref().map(|_| Instant::now());
            m.advance(jump);
            self.profile(SchedPhase::SubstrateStep, t);
            self.counters.advances += 1;
            // Engine-advance time: these are the cycles the reference
            // scheduler would have spent ticking every op once each.
            self.tick_epoch += jump;
            if jump > 1 {
                self.counters.idle_jumps += 1;
                self.counters.jumped_cycles += jump - 1;
            }
            self.idle_streak += 1;
            let t = self.profiler.as_ref().map(|_| Instant::now());
            self.absorb_wakes(m);
            self.profile(SchedPhase::WheelAdvance, t);
            return self.unfinished();
        }
    }

    fn profile(&mut self, phase: SchedPhase, started: Option<Instant>) {
        if let (Some(t), Some(p)) = (started, self.profiler.as_mut()) {
            p.record(phase, t.elapsed().as_nanos() as u64);
        }
    }

    /// How far the clock may advance in one quantum with every running
    /// op asleep. One cycle while packets are in flight (a delivery can
    /// wake someone); otherwise straight to the next wheel event,
    /// clamped so a scripted crash-restart is observed on the cycle its
    /// window closes — exactly when the reference would observe it.
    fn idle_jump(&self, m: &Machine) -> u64 {
        let net = m.network().borrow();
        if net.in_flight() > 0 {
            return 1;
        }
        let Some(mut due) = self.wheel.next_due() else { return 1 };
        if let Some(r) = net.next_restart_at() {
            due = due.min(r.cycles());
        }
        due.saturating_sub(net.now().cycles()).max(1)
    }

    /// Advance the timing wheel to the substrate clock, harvest every
    /// ripe entry, and absorb the substrate's delivery wake set. Wheel
    /// wakes are validated against the slot's incarnation and sleep
    /// generation (slots are reused; sleeps are re-entered); deadline
    /// and watchdog expiries are queued for [`Engine::supervise_event`].
    fn absorb_wakes(&mut self, m: &mut Machine) {
        let now = clock(m);
        self.wheel.advance_to(now);
        for (due, _seq, item) in self.wheel.take_ripe() {
            match item {
                WheelItem::Wake { slot, inc, gen } => {
                    let live = self
                        .slots
                        .get(slot)
                        .is_some_and(|s| s.inc == inc && !s.ready && s.sleep_gen == gen);
                    if live {
                        self.counters.timer_wakes += 1;
                        self.wake_slot(slot);
                    }
                }
                WheelItem::Deadline { id } => self.fired_deadlines.push(id),
                WheelItem::Watchdog { slot, inc } => {
                    self.fired_watchdogs.push((slot, inc, due));
                }
                WheelItem::ParkResume => {}
            }
        }
        for node in m.take_delivered() {
            self.counters.packet_wakes += 1;
            self.touch_node(node);
        }
    }

    /// Note packet activity at `node`: mark it for the orphan sweep and
    /// wake every op sleeping there. Called on substrate deliveries,
    /// crash-restarts, engine stray discards, and whenever an op
    /// progresses or finishes at its endpoints (consumption can reveal
    /// the next queued packet). Consumes the node's subscriber entries
    /// — woken ops re-subscribe when they next sleep — and skips stale
    /// entries whose slot was reused (incarnation mismatch).
    fn touch_node(&mut self, node: NodeId) {
        self.orphan_dirty.insert(node.index());
        if node.index() >= self.node_subs.len() {
            return;
        }
        let mut subs = std::mem::take(&mut self.node_subs[node.index()]);
        for &(slot, inc, ep) in &subs {
            let Some(s) = self.slots.get_mut(slot) else { continue };
            if s.inc != inc {
                continue;
            }
            s.subbed[ep as usize] = false;
            self.wake_slot(slot);
        }
        // Hand the emptied allocation back for the next sleepers.
        subs.clear();
        self.node_subs[node.index()] = subs;
    }

    /// Wake a sleeping slot, delivering the timer ticks it slept
    /// through in one lazy batch. Ticks are engine-advance epochs, not
    /// raw clock cycles: a same-epoch wake delivers zero ticks —
    /// preserving `stalled` until an idle advance actually passes,
    /// exactly like the reference (which only clears it in `tick`).
    fn wake_slot(&mut self, slot: u32) {
        let epoch = self.tick_epoch;
        let Some(s) = self.slots.get_mut(slot) else { return };
        if s.ready {
            return;
        }
        s.ready = true;
        // Invalidate the outstanding wheel wake for this sleep.
        s.sleep_gen += 1;
        let elapsed = epoch.saturating_sub(s.slept_epoch);
        s.a.op.tick_n(elapsed);
    }

    /// Put a slot to sleep after an `Idle` step: record the sleep
    /// anchor, subscribe its endpoints for packet wakes, and schedule
    /// the op's own timer wake — the earliest future cycle at which a
    /// timer tick could make its next step non-idle. Packet activity at
    /// its endpoints wakes it earlier.
    fn sleep_slot(&mut self, m: &Machine, slot: u32) {
        let now = clock(m);
        let wake_in = self.slots[slot].a.op.wake_in(m);
        let endpoints = self.slots[slot].a.op.endpoints();
        let epoch = self.tick_epoch;
        let s = &mut self.slots[slot];
        s.ready = false;
        s.slept_epoch = epoch;
        let inc = s.inc;
        if wake_in != u64::MAX {
            let item = WheelItem::Wake { slot, inc, gen: s.sleep_gen };
            self.wheel.insert(now.saturating_add(wake_in), item);
        }
        // Re-subscribe endpoints whose entry was consumed by a touch
        // since the last sleep; a wake that didn't come through
        // `touch_node` (timer, spurious) leaves the entries queued, so
        // the flags keep this duplicate-free.
        for (ep, node) in [endpoints.0, endpoints.1].into_iter().enumerate() {
            if self.slots[slot].subbed[ep] {
                continue;
            }
            self.slots[slot].subbed[ep] = true;
            let ni = node.index();
            if ni >= self.node_subs.len() {
                self.node_subs.resize_with(ni + 1, Vec::new);
            }
            self.node_subs[ni].push((slot, inc, ep as u8));
        }
    }

    /// Move an admitted op into the run arena: allocate its slot and
    /// arm its no-progress watchdog on the wheel. Endpoint
    /// subscriptions happen lazily on first sleep — the op spawns
    /// ready.
    fn spawn(&mut self, m: &Machine, a: ActiveOp) {
        let now = clock(m);
        let bound = self.watchdog.unwrap_or(4 * m.config().max_wait_cycles);
        let inc = self.next_inc;
        self.next_inc += 1;
        let wd_due = now.saturating_add(bound).saturating_add(1);
        let slot = self.slots.insert(RunSlot {
            a,
            inc,
            ready: true,
            slept_epoch: self.tick_epoch,
            sleep_gen: 0,
            subbed: [false; 2],
            wd_due,
        });
        self.run_order.push(slot);
        if self.mode == SchedMode::EventDriven {
            self.wheel.insert(wd_due, WheelItem::Watchdog { slot, inc });
        }
    }

    fn admit(&mut self, m: &mut Machine) {
        let mut still_pending = VecDeque::new();
        while let Some(mut op) = self.pending.pop_front() {
            let key = op.op.conflict_key();
            let blocked = match key {
                Some(k) => {
                    self.busy.contains(&k)
                        // Keep same-key pending ops in submission order.
                        || still_pending
                            .iter()
                            .any(|p: &ActiveOp| p.op.conflict_key() == Some(k))
                }
                None => false,
            };
            if blocked {
                still_pending.push_back(op);
                continue;
            }
            if let Some(k) = key {
                self.busy.insert(k);
            }
            self.record(m, EngineEvent::Started(op.id));
            let endpoints = op.op.endpoints();
            let cls = self.class_pre(m, op.id, endpoints);
            op.op.start(m);
            self.class_post(m, cls, endpoints);
            op.last_progress_at = clock(m);
            self.spawn(m, op);
        }
        self.pending = still_pending;
    }

    fn finish(&mut self, m: &Machine, idx: usize, result: Result<OpOutcome, ProtocolError>) {
        let slot = self.run_order.remove(idx);
        let s = self.slots.remove(slot);
        let endpoints = s.a.op.endpoints();
        // Any subscriber entries the op still holds go stale with its
        // slot: touches validate the incarnation and drop them lazily.
        // The op's remaining packets just became unclaimed, and a queue
        // head it was about to consume may now be someone else's to
        // reveal: mark both endpoints and wake their subscribers.
        self.touch_node(endpoints.0);
        self.touch_node(endpoints.1);
        if self.try_recover(m, s.a.id, Some(&s.a.op), &result) {
            // The parked op keeps its conflict key: queued same-key
            // work must not overtake the re-execution.
            return;
        }
        if let Some(k) = s.a.op.conflict_key() {
            self.busy.remove(&k);
        }
        self.settle(m, s.a.id, result);
    }

    /// Engine-native recovery decision: a retryable failure of a
    /// recovery-armed op with budget left *parks* the op for its
    /// backoff window instead of settling it, billing the
    /// session-restart instruction shape to `Feature::FaultTol` at the
    /// op's source — the same shape (and feature) the caller-side
    /// restart loop this replaces used to bill. Returns `true` if the
    /// op was parked.
    fn try_recover(
        &mut self,
        m: &Machine,
        id: OpId,
        op: Option<&OpKind>,
        result: &Result<OpOutcome, ProtocolError>,
    ) -> bool {
        let Err(err) = result else { return false };
        if !err.is_retryable() {
            return false;
        }
        {
            let Some(state) = self.recovery.get(&id) else { return false };
            if state.re_executions + 1 >= state.policy.max_executions {
                return false;
            }
        }
        // The class retry budget is spent *before* parking: a denial
        // means the failure settles normally (and is counted), capping
        // recovery amplification under correlated failure.
        if !self.charge_retry_budget(m, id) {
            return false;
        }
        let state = self.recovery.get_mut(&id).expect("recovery state just checked");
        // A failed first execution teaches the stream spec its base
        // sequence, so re-executions resume the burst (exactly-once)
        // instead of restarting it at a fresh sequence range.
        if let (OpSpec::Stream { base_seq, .. }, Some(OpKind::Stream(s))) = (&mut state.spec, op) {
            base_seq.get_or_insert(s.first_seq);
        }
        state.re_executions += 1;
        let wait = state.policy.window(state.re_executions);
        let src = state.spec.source();
        let cpu = m.cpu(src);
        let cls = self.class_pre(m, id, (src, src));
        cpu.with_feature(Feature::FaultTol, |c| {
            c.reg(Fine::RegOp, recovery::SESSION_RESTART_REG);
            c.mem_store(recovery::SESSION_RESTART_MEM);
        });
        self.class_post(m, cls, (src, src));
        self.record(m, EngineEvent::Recovering(id));
        let resume_at = clock(m).saturating_add(wait);
        self.parked.insert(id, resume_at);
        if self.mode == SchedMode::EventDriven {
            // Jump-bound marker only: release is decided from `parked`
            // itself, but the idle jump must not overshoot the resume.
            self.wheel.insert(resume_at, WheelItem::ParkResume);
        }
        true
    }

    /// Re-admit parked ops whose backoff window has closed: rebuild the
    /// state machine from its recovery spec (a fresh session epoch is
    /// allocated in `start`) and put it straight back on the running
    /// set — its conflict key never left `busy`.
    fn release_recovered(&mut self, m: &mut Machine) {
        let now = clock(m);
        let due: Vec<OpId> = self
            .parked
            .iter()
            .filter(|&(_, &at)| at <= now)
            .map(|(&id, _)| id)
            .collect();
        for id in due {
            self.parked.remove(&id);
            let mut op =
                self.recovery.get(&id).expect("parked ops are recovery-armed").spec.rebuild();
            self.record(m, EngineEvent::Started(id));
            let endpoints = op.endpoints();
            let cls = self.class_pre(m, id, endpoints);
            op.start(m);
            self.class_post(m, cls, endpoints);
            let last_progress_at = clock(m);
            self.spawn(m, ActiveOp { id, op, last_progress_at });
        }
    }

    /// Epoch-TTL sweep of receiver-side tables (dead sessions left by
    /// crashed senders, reply-cache entries of long-settled calls).
    /// Sessions and replies belonging to live operations are exempt —
    /// including replies awaited by *parked* RPCs, so re-execution
    /// still deduplicates against a handler that already ran. The
    /// sweep itself happens in [`Machine::gc_expired`], billed to
    /// `Feature::FaultTol` at each reclaiming receiver.
    fn collect_garbage(&mut self, m: &mut Machine) {
        // Fast path: nothing is past its TTL, so the sweep would
        // reclaim (and bill) nothing. The check is conservative —
        // ignoring live-set exemptions — so a `false` is always exact.
        if !m.gc_has_expired() {
            return;
        }
        let mut live_sessions: HashSet<(NodeId, NodeId)> = HashSet::new();
        let mut live_replies: HashSet<(NodeId, NodeId, u32)> = HashSet::new();
        let live_ops = self
            .run_order
            .iter()
            .map(|&s| &self.slots[s].a)
            .chain(self.pending.iter())
            .chain(self.held.values().map(|h| &h.op));
        for op in live_ops {
            match &op.op {
                OpKind::Xfer(o) => {
                    live_sessions.insert((o.dst, o.src));
                }
                OpKind::Reliable(o) => {
                    live_sessions.insert((o.dst, o.src));
                }
                OpKind::Rpc(o) => {
                    live_replies.insert((o.dst, o.src, o.call_id as u32));
                }
                OpKind::Stream(_) | OpKind::Am4(_) => {}
            }
        }
        // Parked reliable transfers are deliberately *not* exempt: the
        // next execution opens a fresh epoch, so the receiver's
        // stale-epoch session is exactly what the sweep should reclaim.
        for id in self.parked.keys() {
            if let Some(RecoveryState { spec: OpSpec::Rpc { src, dst, call_id, .. }, .. }) =
                self.recovery.get(id)
            {
                live_replies.insert((*dst, *src, *call_id as u32));
            }
        }
        m.gc_expired(&live_sessions, &live_replies);
    }

    /// Record an operation's final outcome and propagate it along
    /// run-after edges. Success releases each dependent whose *last*
    /// outstanding predecessor this was (held → pending, with a
    /// `Released` trace event); failure fails every direct dependent
    /// with [`ProtocolError::DependencyFailed`] naming this operation,
    /// which recurses through *their* dependents so the whole downstream
    /// cone settles in one pass.
    fn settle(&mut self, m: &Machine, id: OpId, result: Result<OpOutcome, ProtocolError>) {
        let ok = result.is_ok();
        let err = result.as_ref().err().cloned();
        self.record(m, EngineEvent::Completed(id, ok));
        self.outcomes.insert(id, result);
        self.deadlines.remove(&id);
        if ok {
            self.done_ok.insert(id);
        } else {
            self.done_err.insert(id);
        }
        if let Some(e) = &err {
            // Keep the flattened root cause so dependents — including
            // ones submitted after this settles — can carry it.
            let root = match e {
                ProtocolError::DependencyFailed { root, .. } => (**root).clone(),
                other => other.clone(),
            };
            self.root_errors.insert(id, root);
        }
        let Some(deps) = self.dependents.remove(&id) else {
            return;
        };
        for dep in deps {
            if ok {
                let release = match self.held.get_mut(&dep) {
                    Some(h) => {
                        h.waiting_on.remove(&id);
                        h.waiting_on.is_empty()
                    }
                    None => false,
                };
                if release {
                    let h = self.held.remove(&dep).expect("held entry just seen");
                    self.record(m, EngineEvent::Released(dep));
                    self.pending.push_back(h.op);
                }
            } else if self.held.remove(&dep).is_some() {
                let root = err.clone().expect("failure settles with an error");
                self.settle(m, dep, Err(ProtocolError::dependency_failed(id, &root)));
            }
        }
    }

    /// Discard one reserved-tag packet claimed by no active operation
    /// (a stale duplicate of an already-completed operation). Charged
    /// with the same instruction shape the blocking recovery paths used
    /// for stray discards. Returns `true` if something was discarded.
    fn discard_orphan(&mut self, m: &mut Machine) -> bool {
        for node in (0..m.num_nodes()).map(NodeId::new) {
            let Some(meta) = m.rx_peek_at(node) else {
                continue;
            };
            // Reserved protocol tags are engine-owned. User-tag packets
            // carrying a nonzero header are recovery-stamped am4 sends
            // (plain user traffic always rides header 0) and equally
            // discardable once no running op claims their token.
            let reserved = meta.tag < Tags::USER_BASE || meta.tag == Tags::RPC_REPLY;
            let stamped = !reserved && meta.header != 0;
            if !reserved && !stamped {
                continue;
            }
            if self.claimed(node, &meta) {
                continue;
            }
            m.discard_stray(node);
            return true;
        }
        false
    }

    fn claimed(&self, node: NodeId, meta: &RxMeta) -> bool {
        self.run_order.iter().any(|&s| self.slots[s].a.op.claims(node, meta))
    }

    /// Event-mode orphan discard: same decision as
    /// [`Engine::discard_orphan`], but only nodes with packet activity
    /// since their last clean verdict are examined. Every path that can
    /// surface a discardable head marks the node dirty (deliveries,
    /// restarts, claimant progress/finish, prior discards), so the
    /// dirty set is a superset of the nodes the full scan could act on.
    fn discard_orphan_event(&mut self, m: &mut Machine) -> bool {
        while let Some(&ni) = self.orphan_dirty.iter().next() {
            let node = NodeId::new(ni);
            let Some(meta) = m.rx_peek_at(node) else {
                self.orphan_dirty.remove(&ni);
                continue;
            };
            let reserved = meta.tag < Tags::USER_BASE || meta.tag == Tags::RPC_REPLY;
            let stamped = !reserved && meta.header != 0;
            if (!reserved && !stamped) || self.claimed(node, &meta) {
                self.orphan_dirty.remove(&ni);
                continue;
            }
            m.discard_stray(node);
            // The next queued packet (if any) surfaced: leave the node
            // dirty and wake its subscribers.
            self.touch_node(node);
            return true;
        }
        debug_assert!(
            !self.discard_scan_would_find(m),
            "orphan-dirty set missed a discardable packet"
        );
        false
    }

    /// Debug cross-check for [`Engine::discard_orphan_event`]: would the
    /// reference full scan have discarded something the dirty scan just
    /// declared absent?
    fn discard_scan_would_find(&self, m: &mut Machine) -> bool {
        (0..m.num_nodes()).map(NodeId::new).any(|node| {
            m.rx_peek_at(node).is_some_and(|meta| {
                let reserved = meta.tag < Tags::USER_BASE || meta.tag == Tags::RPC_REPLY;
                let stamped = !reserved && meta.header != 0;
                (reserved || stamped) && !self.claimed(node, &meta)
            })
        })
    }

    // -----------------------------------------------------------------
    // Supervision: deadlines, watchdog, cancellation, quiesce.
    // -----------------------------------------------------------------

    /// Arm (or re-arm) a deadline for an unfinished operation: if it has
    /// not completed within `cycles_from_now` substrate cycles, the
    /// engine settles it with the retryable
    /// [`ProtocolError::DeadlineExceeded`] and cascades
    /// [`ProtocolError::DependencyFailed`] into its dependents, exactly
    /// like any other failure. Deadlines on already-finished ids are
    /// ignored. Supervision is host-side scheduling: it charges no
    /// simulated instructions.
    pub fn set_deadline(&mut self, m: &Machine, id: OpId, cycles_from_now: u64) {
        if self.outcomes.contains_key(&id) || self.done_ok.contains(&id) || self.done_err.contains(&id) {
            return;
        }
        let at = clock(m).saturating_add(cycles_from_now);
        self.deadlines.insert(id, (at, cycles_from_now));
        if self.mode == SchedMode::EventDriven {
            // Always arm a fresh wheel entry: re-arming to a *shorter*
            // budget must not wait out the old entry. Stale entries
            // validate against the map when they fire and are dropped.
            self.wheel.insert(at, WheelItem::Deadline { id });
        }
    }

    /// Override the per-operation no-progress watchdog bound (cycles an
    /// admitted operation may go without a `Progressed` event before the
    /// engine settles it with [`ProtocolError::DeadlineExceeded`]). The
    /// default, `4 × max_wait_cycles`, is deliberately looser than every
    /// protocol's own internal timeout so op-level errors fire first.
    pub fn set_watchdog(&mut self, cycles: u64) {
        self.watchdog = Some(cycles);
        if self.mode == SchedMode::EventDriven {
            // Re-derive every running op's expiry under the new bound
            // and arm fresh wheel entries: a shrunken bound must not
            // wait out entries armed under the old one.
            for i in 0..self.run_order.len() {
                let slot = self.run_order[i];
                let s = &mut self.slots[slot];
                s.wd_due = s.a.last_progress_at.saturating_add(cycles).saturating_add(1);
                let (wd_due, inc) = (s.wd_due, s.inc);
                self.wheel.insert(wd_due, WheelItem::Watchdog { slot, inc });
            }
        }
    }

    /// [`Engine::submit_xfer_reliable`] with a completion deadline in
    /// substrate cycles (see [`Engine::set_deadline`]).
    ///
    /// # Errors
    ///
    /// [`ProtocolError::BadTransfer`] for empty or oversized data.
    ///
    /// # Panics
    ///
    /// Panics if `src == dst`, either node is out of range, or the
    /// policy allows zero attempts.
    pub fn submit_xfer_reliable_with_deadline(
        &mut self,
        m: &Machine,
        src: NodeId,
        dst: NodeId,
        data: &[u32],
        policy: &RetryPolicy,
        deadline: u64,
    ) -> Result<OpId, ProtocolError> {
        let id = self.submit_xfer_reliable(m, src, dst, data, policy)?;
        self.set_deadline(m, id, deadline);
        Ok(id)
    }

    /// Cancel an unfinished operation wherever it is (running, pending,
    /// or held): it settles with [`ProtocolError::Cancelled`], its
    /// conflict key is released, and dependents fail with
    /// [`ProtocolError::DependencyFailed`] whose root is the
    /// cancellation. Returns `false` if the id was already finished (or
    /// never submitted). In-flight packets of a cancelled operation are
    /// left to the orphan-discard sweep.
    pub fn cancel(&mut self, m: &Machine, id: OpId) -> bool {
        self.expire(m, id, ProtocolError::Cancelled)
    }

    /// Settle one unfinished op with `err`, wherever it currently is.
    /// Cancellations record the uniform [`EngineEvent::Cancelled`]
    /// trace event regardless of where the op sat.
    fn expire(&mut self, m: &Machine, id: OpId, err: ProtocolError) -> bool {
        self.deadlines.remove(&id);
        let cancelled = matches!(err, ProtocolError::Cancelled);
        if let Some(idx) = self.run_order.iter().position(|&s| self.slots[s].a.id == id) {
            if cancelled {
                self.record(m, EngineEvent::Cancelled(id));
            }
            self.finish(m, idx, Err(err));
            return true;
        }
        if let Some(pos) = self.pending.iter().position(|op| op.id == id) {
            if cancelled {
                self.record(m, EngineEvent::Cancelled(id));
            }
            self.pending.remove(pos);
            self.settle(m, id, Err(err));
            return true;
        }
        if self.held.remove(&id).is_some() {
            if cancelled {
                self.record(m, EngineEvent::Cancelled(id));
            }
            self.settle(m, id, Err(err));
            return true;
        }
        if self.parked.remove(&id).is_some() {
            if cancelled {
                self.record(m, EngineEvent::Cancelled(id));
            }
            // A retryable expiry (a deadline firing mid-backoff)
            // consumes recovery budget and re-parks; anything else —
            // cancellation included — releases the conflict key the
            // parked op was holding and settles it.
            if self.try_recover(m, id, None, &Err(err.clone())) {
                return true;
            }
            if let Some(k) = self.recovery.get(&id).and_then(|s| s.spec.conflict_key()) {
                self.busy.remove(&k);
            }
            self.settle(m, id, Err(err));
            return true;
        }
        false
    }

    /// Enforce deadlines and the no-progress watchdog by scanning every
    /// armed deadline and every running op. Returns `true` if any
    /// operation was settled (the pump loop restarts its sweep so
    /// released conflict keys are re-admitted in the same quantum).
    fn supervise_reference(&mut self, m: &Machine) -> bool {
        let now = clock(m);
        let mut acted = false;
        let due: Vec<(OpId, u64)> = self
            .deadlines
            .iter()
            .filter(|&(_, &(at, _))| now >= at)
            .map(|(&id, &(_, budget))| (id, budget))
            .collect();
        for (id, budget) in due {
            acted |= self.expire(
                m,
                id,
                ProtocolError::DeadlineExceeded { what: "deadline", cycles: budget },
            );
        }
        let bound = self.watchdog.unwrap_or(4 * m.config().max_wait_cycles);
        let starved: Vec<(OpId, u64)> = self
            .run_order
            .iter()
            .map(|&s| &self.slots[s].a)
            .filter(|op| now.saturating_sub(op.last_progress_at) > bound)
            .map(|op| (op.id, now - op.last_progress_at))
            .collect();
        for (id, cycles) in starved {
            acted |= self.expire(
                m,
                id,
                ProtocolError::DeadlineExceeded { what: "watchdog", cycles },
            );
        }
        acted
    }

    /// Event-mode supervision: act only on deadline and watchdog
    /// entries the wheel has already fired, validating each against
    /// current engine state (wheel entries are never cancelled, so a
    /// re-armed deadline or a progressed op simply shows up stale here
    /// and is dropped or re-scheduled). Expiry order matches the
    /// reference scan: deadlines in `OpId` order first, then starved
    /// ops in running order.
    fn supervise_event(&mut self, m: &Machine) -> bool {
        if self.fired_deadlines.is_empty() && self.fired_watchdogs.is_empty() {
            return false;
        }
        let now = clock(m);
        let mut acted = false;
        let mut fired = std::mem::take(&mut self.fired_deadlines);
        fired.sort_unstable();
        fired.dedup();
        for id in fired {
            match self.deadlines.get(&id) {
                Some(&(at, budget)) if now >= at => {
                    acted |= self.expire(
                        m,
                        id,
                        ProtocolError::DeadlineExceeded { what: "deadline", cycles: budget },
                    );
                }
                Some(&(at, _)) => {
                    // Re-armed to a later cycle since this entry was
                    // scheduled: chase the live expiry.
                    self.wheel.insert(at, WheelItem::Deadline { id });
                }
                None => {}
            }
        }
        let mut fired = std::mem::take(&mut self.fired_watchdogs);
        // The reference scans in running order; fired order is wheel
        // (due, seq) order, so re-sort by current position.
        fired.sort_by_key(|&(slot, _, _)| {
            self.run_order.iter().position(|&s| s == slot).unwrap_or(usize::MAX)
        });
        for (slot, inc, _due) in fired {
            let live = self
                .slots
                .get(slot)
                .filter(|s| s.inc == inc)
                .map(|s| (s.a.id, s.wd_due, s.a.last_progress_at));
            let Some((id, wd_due, last_progress_at)) = live else { continue };
            if now >= wd_due {
                let cycles = now - last_progress_at;
                acted |= self.expire(
                    m,
                    id,
                    ProtocolError::DeadlineExceeded { what: "watchdog", cycles },
                );
            } else {
                // Progressed since this entry was armed: chase the
                // pushed-out expiry.
                self.wheel.insert(wd_due, WheelItem::Watchdog { slot, inc });
            }
        }
        acted
    }

    /// Graceful shutdown: cancel everything still waiting (pending,
    /// dependency-held, and parked between recovery executions), drive
    /// the already-running operations to completion, then drain
    /// orphaned in-flight packets until the network is empty. Every
    /// cancellation records the uniform [`EngineEvent::Cancelled`]
    /// trace event before settling with [`ProtocolError::Cancelled`].
    /// Returns the number of stray packets discarded during the drain.
    pub fn quiesce(&mut self, m: &mut Machine) -> usize {
        let waiting: Vec<OpId> = self
            .pending
            .iter()
            .map(|op| op.id)
            .chain(self.held.keys().copied())
            .chain(self.parked.keys().copied())
            .collect();
        for id in waiting {
            self.cancel(m, id);
        }
        while self.unfinished() > 0 {
            self.pump(m);
        }
        let mut drained = 0;
        let mut guard = 0;
        loop {
            while self.discard_orphan(m) {
                drained += 1;
            }
            if m.network().borrow().in_flight() == 0 || guard > m.config().max_wait_cycles {
                break;
            }
            m.advance(1);
            guard += 1;
        }
        drained
    }
}

// ---------------------------------------------------------------------
// Finite-sequence transfer (plain).
// ---------------------------------------------------------------------

enum XferPhase {
    Handshake,
    Transfer,
    SendAck,
    AwaitAck,
}

struct XferOp {
    src: NodeId,
    dst: NodeId,
    data: Vec<u32>,
    engine: PayloadEngine,
    n: usize,
    packets: u64,
    phase: XferPhase,
    src_buf: Addr,
    req_sent: bool,
    reply_sent: bool,
    segment: Option<(u32, Addr)>,
    rx: XferRx,
    next_packet: u64,
    send_retries: u64,
    waited: u64,
    stalled: bool,
    // Endpoint restart counters at start; see `check_restart`.
    peer_restarts: (u32, u32),
}

impl XferOp {
    fn new(src: NodeId, dst: NodeId, data: Vec<u32>, engine: PayloadEngine, n: usize) -> Self {
        let packets = (data.len() as u64).div_ceil(n as u64);
        XferOp {
            src,
            dst,
            data,
            engine,
            n,
            packets,
            phase: XferPhase::Handshake,
            src_buf: Addr(0),
            req_sent: false,
            reply_sent: false,
            segment: None,
            rx: XferRx {
                buffer: Addr(0),
                packets_expected: packets,
                packets_received: 0,
            },
            next_packet: 0,
            send_retries: 0,
            waited: 0,
            stalled: false,
            peer_restarts: (0, 0),
        }
    }

    fn start(&mut self, m: &mut Machine) {
        // Harness setup: stage the data in source memory (cost-free).
        self.src_buf = m.write_buffer(self.src, &self.data);
        self.peer_restarts = (m.restarts_of(self.src), m.restarts_of(self.dst));
    }

    fn tick(&mut self) {
        self.tick_n(1);
    }

    fn tick_n(&mut self, k: u64) {
        self.waited += k;
        self.stalled = false;
    }

    /// Every injection attempt sets `stalled` on backpressure and every
    /// receive path is head-gated on a packet being present, so an idle
    /// step without `stalled` can only become non-idle when `waited`
    /// crosses the protocol's wait window (or a packet arrives, which
    /// wakes the op through its endpoint subscription).
    fn wake_in(&self, max_wait: u64) -> u64 {
        if self.stalled {
            return 1;
        }
        win(max_wait, self.waited)
    }

    fn step(&mut self, m: &mut Machine) -> Result<Stepped, ProtocolError> {
        if let Some(e) = check_restart(m, self.src, self.dst, self.peer_restarts) {
            return Err(e);
        }
        let max_wait = m.config().max_wait_cycles;
        let (src, dst, n) = (self.src, self.dst, self.n);
        match self.phase {
            XferPhase::Handshake => {
                if self.waited > max_wait {
                    return Err(ProtocolError::timeout("xfer reply", self.waited));
                }
                let mut progress = false;
                // Step 1: allocation request (buffer management).
                if !self.req_sent && !self.stalled {
                    let node = m.node_mut(src);
                    let sent = node.cpu.clone().with_feature(Feature::BufferMgmt, |_| {
                        node.send_ctl(dst, Tags::XFER_REQ, self.data.len() as u32, [0; 4])
                    });
                    if sent {
                        self.req_sent = true;
                        progress = true;
                    } else {
                        self.stalled = true;
                    }
                }
                // Step 2: receiver allocates a segment.
                if self.segment.is_none() && peek_is(m, dst, src, Tags::XFER_REQ) {
                    let node = m.node_mut(dst);
                    let cpu = node.cpu.clone();
                    let seg = cpu.with_feature(Feature::BufferMgmt, |_| {
                        let (_, tag, header, _) = node.recv_ctl_now();
                        debug_assert_eq!(tag, Tags::XFER_REQ);
                        let words = header as usize;
                        let buffer = node.mem.alloc(words.div_ceil(n) * n);
                        node.cpu.reg(Fine::RegOp, segment::ASSOCIATE_REG);
                        node.cpu.mem_store(segment::ASSOCIATE_MEM);
                        ((buffer.0 & 0xffff) as u32 ^ 0x5e60_0000, buffer)
                    });
                    self.segment = Some(seg);
                    progress = true;
                }
                // Step 3: the reply.
                if let Some((seg, _)) = self.segment {
                    if !self.reply_sent && !self.stalled {
                        let node = m.node_mut(dst);
                        let sent = node.cpu.clone().with_feature(Feature::BufferMgmt, |_| {
                            node.send_ctl(src, Tags::XFER_REPLY, seg, [0; 4])
                        });
                        if sent {
                            self.reply_sent = true;
                            progress = true;
                        } else {
                            self.stalled = true;
                        }
                    }
                    if self.reply_sent && peek_is(m, src, dst, Tags::XFER_REPLY) {
                        let node = m.node_mut(src);
                        let cpu = node.cpu.clone();
                        cpu.with_feature(Feature::BufferMgmt, |_| {
                            let (_, tag, header, _) = node.recv_ctl_now();
                            debug_assert_eq!(tag, Tags::XFER_REPLY);
                            debug_assert_eq!(header, seg);
                        });
                        self.rx.buffer = self.segment.expect("just checked").1;
                        transfer_prologue(m, src, dst);
                        self.phase = XferPhase::Transfer;
                        self.waited = 0;
                        return Ok(Stepped::Progress);
                    }
                }
                Ok(if progress { Stepped::Progress } else { Stepped::Idle })
            }
            XferPhase::Transfer => {
                if self.waited > max_wait {
                    return Err(ProtocolError::timeout("xfer data packets", self.waited));
                }
                let mut progress = false;
                // Step 4: inject (source side).
                if !self.stalled {
                    while self.next_packet < self.packets {
                        let offset = self.next_packet * n as u64;
                        if m.send_data_packet(src, dst, self.src_buf, offset, n, self.engine, 0) {
                            self.next_packet += 1;
                            progress = true;
                        } else {
                            self.send_retries += 1;
                            self.stalled = true;
                            break;
                        }
                    }
                }
                // Step 4: drain (destination side), gated on our data.
                while self.rx.packets_received < self.rx.packets_expected
                    && peek_is(m, dst, src, Tags::XFER_DATA)
                {
                    m.recv_one_data_packet(dst, n, &mut self.rx);
                    progress = true;
                }
                if progress {
                    self.waited = 0;
                }
                if self.next_packet == self.packets
                    && self.rx.packets_received == self.rx.packets_expected
                {
                    // Step 5: free the segment.
                    let node = m.node_mut(dst);
                    node.cpu.clone().with_feature(Feature::InOrder, |cpu| {
                        cpu.reg(Fine::RegOp, xfer_order::DST_FINAL);
                    });
                    node.cpu.mem_store(xfer_recv::EXIT_STATE_MEM);
                    node.cpu.clone().with_feature(Feature::BufferMgmt, |cpu| {
                        cpu.reg(Fine::RegOp, segment::DISASSOCIATE_REG);
                        cpu.mem_store(segment::DISASSOCIATE_MEM);
                    });
                    self.phase = XferPhase::SendAck;
                    self.waited = 0;
                    return Ok(Stepped::Progress);
                }
                Ok(if progress { Stepped::Progress } else { Stepped::Idle })
            }
            XferPhase::SendAck => {
                if self.waited > max_wait {
                    return Err(ProtocolError::timeout("control-packet injection", self.waited));
                }
                if self.stalled {
                    return Ok(Stepped::Idle);
                }
                let seg = self.segment.expect("segment allocated").0;
                let node = m.node_mut(dst);
                let sent = node.cpu.clone().with_feature(Feature::FaultTol, |_| {
                    node.send_ctl(src, Tags::XFER_ACK, seg, [0; 4])
                });
                if sent {
                    self.phase = XferPhase::AwaitAck;
                    self.waited = 0;
                    Ok(Stepped::Progress)
                } else {
                    self.stalled = true;
                    Ok(Stepped::Idle)
                }
            }
            XferPhase::AwaitAck => {
                if self.waited > max_wait {
                    return Err(ProtocolError::timeout("xfer acknowledgement", self.waited));
                }
                if !peek_is(m, src, dst, Tags::XFER_ACK) {
                    return Ok(Stepped::Idle);
                }
                let seg = self.segment.expect("segment allocated").0;
                let node = m.node_mut(src);
                let cpu = node.cpu.clone();
                cpu.with_feature(Feature::FaultTol, |_| {
                    let (_, tag, header, _) = node.recv_ctl_now();
                    debug_assert_eq!(tag, Tags::XFER_ACK);
                    debug_assert_eq!(header, seg);
                });
                Ok(Stepped::Done(OpOutcome::Xfer(XferOutcome {
                    dst_buffer: self.rx.buffer,
                    packets: self.packets,
                    segment_id: seg,
                    send_retries: self.send_retries,
                })))
            }
        }
    }
}

/// The per-message source prologue and destination handler entry charged
/// between the handshake and the data phase (identical in the plain and
/// reliable protocols).
fn transfer_prologue(m: &mut Machine, src: NodeId, dst: NodeId) {
    {
        let node = m.node_mut(src);
        node.cpu.reg(Fine::CallReturn, xfer_send::PROLOGUE_REG);
        node.cpu.mem_load(xfer_send::PROLOGUE_MEM);
    }
    {
        let node = m.node_mut(dst);
        node.cpu.call(xfer_recv::ENTRY_CALL);
        node.cpu.ctrl(xfer_recv::ENTRY_CTRL);
        node.cpu.handler(xfer_recv::ENTRY_HANDLER);
        node.cpu.mem_load(xfer_recv::ENTRY_STATE_MEM);
        let _ = node.ni.poll_status();
    }
}

/// Cost-free gate: is the packet at `node`'s queue head from `from`
/// with tag `tag`?
fn peek_is(m: &mut Machine, node: NodeId, from: NodeId, tag: u8) -> bool {
    m.rx_peek_at(node)
        .is_some_and(|meta| meta.src == from && meta.tag == tag)
}

// ---------------------------------------------------------------------
// RPC.
// ---------------------------------------------------------------------

struct RpcOp {
    src: NodeId,
    dst: NodeId,
    tag: u8,
    args: [u32; 4],
    call_id: u64,
    policy: Option<RetryPolicy>,
    sent: bool,
    stalled: bool,
    attempt: u32,
    waited: u64,
    total_waited: u64,
    // Recovery-managed ops fail fast with the retryable `SessionReset`
    // when an endpoint crash-restarts mid-call (counters captured at
    // start); unmanaged ops keep the pre-recovery-plane behavior and
    // ride out crashes through their own retry windows.
    managed: bool,
    peer_restarts: (u32, u32),
}

impl RpcOp {
    fn new(
        src: NodeId,
        dst: NodeId,
        tag: u8,
        args: [u32; 4],
        call_id: u64,
        policy: Option<RetryPolicy>,
        managed: bool,
    ) -> Self {
        RpcOp {
            src,
            dst,
            tag,
            args,
            call_id,
            policy,
            sent: false,
            stalled: false,
            attempt: 0,
            waited: 0,
            total_waited: 0,
            managed,
            peer_restarts: (0, 0),
        }
    }

    fn start(&mut self, m: &Machine) {
        self.peer_restarts = (m.restarts_of(self.src), m.restarts_of(self.dst));
    }

    fn tick(&mut self) {
        self.tick_n(1);
    }

    fn tick_n(&mut self, k: u64) {
        self.stalled = false;
        self.waited += k;
        if self.sent {
            self.total_waited += k;
        }
    }

    /// Unsent requests retry injection every cycle once the stall
    /// clears; a sent request is quiet until its retry window (or the
    /// global wait bound) closes. Request service and reply pickup are
    /// packet-driven and wake the op through its endpoints.
    fn wake_in(&self, max_wait: u64) -> u64 {
        if self.stalled || !self.sent {
            return 1;
        }
        match &self.policy {
            Some(p) => win(p.backoff(self.attempt), self.waited),
            None => win(max_wait, self.waited),
        }
    }

    fn step(&mut self, m: &mut Machine) -> Result<Stepped, ProtocolError> {
        if self.managed {
            if let Some(e) = check_restart(m, self.src, self.dst, self.peer_restarts) {
                return Err(e);
            }
        }
        // Deadline / retry-window bookkeeping.
        if let Some(policy) = self.policy.clone() {
            if self.sent && self.waited > policy.backoff(self.attempt) {
                self.attempt += 1;
                if self.attempt >= policy.max_attempts {
                    return Err(ProtocolError::Timeout {
                        waiting_for: "rpc reply",
                        cycles: self.total_waited,
                        node: Some(self.src),
                        attempts: policy.max_attempts - 1,
                    });
                }
                // Recover: retransmit the request in the next window.
                self.sent = false;
                self.waited = 0;
            }
        } else if self.sent && self.waited > m.config().max_wait_cycles {
            return Err(ProtocolError::timeout("rpc reply", self.waited));
        }
        if !self.sent && self.waited > m.config().max_wait_cycles {
            return Err(ProtocolError::timeout("rpc injection", self.waited));
        }

        let mut progress = false;
        if !self.sent && !self.stalled {
            let ok = if self.attempt == 0 {
                m.rpc_send_once(self.src, self.dst, self.tag, self.call_id, self.args)
            } else {
                let cpu = m.cpu(self.src);
                cpu.with_feature(Feature::FaultTol, |_| {
                    m.rpc_send_once(self.src, self.dst, self.tag, self.call_id, self.args)
                })
            };
            if ok {
                self.sent = true;
                self.waited = 0;
                progress = true;
            } else {
                self.stalled = true;
            }
        }

        // Serve the callee when our request is at its queue head.
        if peek_is(m, self.dst, self.src, self.tag) {
            let _ = m.rpc_service(self.dst);
            progress = true;
        }

        // Surface the reply when it is at the caller's queue head and
        // carries our correlation id (a concurrent call's reply stays
        // for its own operation).
        if m.rx_peek_at(self.src).is_some_and(|meta| {
            meta.src == self.dst
                && meta.tag == Tags::RPC_REPLY
                && meta.header == self.call_id as u32
        }) {
            match m.rpc_service(self.src) {
                RpcEvent::Reply(id, words) => {
                    debug_assert_eq!(id, self.call_id);
                    return Ok(Stepped::Done(OpOutcome::Rpc(words)));
                }
                other => unreachable!("gated reply peek yielded {other:?}"),
            }
        }
        Ok(if progress { Stepped::Progress } else { Stepped::Idle })
    }
}

// ---------------------------------------------------------------------
// Four-word active message (the paper's CMAM_4).
// ---------------------------------------------------------------------

/// One user-tag four-word active message as an engine operation: the
/// Table 1 20-instruction send on `src`, then a destination poll once
/// the packet is at `dst`'s queue head. The building block the
/// engine-native collectives compose into dependency DAGs.
struct Am4Op {
    src: NodeId,
    dst: NodeId,
    tag: u8,
    words: [u32; 4],
    // Delivery token riding the header word: 0 for plain submissions
    // (matching `Machine::am4_send`), nonzero for recovery-managed ops
    // so a duplicate left by a crash-straddling re-execution is
    // attributable — consumption is token-gated, and an unclaimed
    // leftover is orphan-discardable.
    token: u32,
    // Recovery-managed ops fail fast with `SessionReset` on an
    // endpoint crash-restart (counters captured at start).
    managed: bool,
    sent: bool,
    stalled: bool,
    waited: u64,
    peer_restarts: (u32, u32),
}

impl Am4Op {
    fn new(src: NodeId, dst: NodeId, tag: u8, words: [u32; 4], token: u32, managed: bool) -> Self {
        Am4Op {
            src,
            dst,
            tag,
            words,
            token,
            managed,
            sent: false,
            stalled: false,
            waited: 0,
            peer_restarts: (0, 0),
        }
    }

    fn start(&mut self, m: &Machine) {
        self.peer_restarts = (m.restarts_of(self.src), m.restarts_of(self.dst));
    }

    fn tick(&mut self) {
        self.tick_n(1);
    }

    fn tick_n(&mut self, k: u64) {
        self.stalled = false;
        self.waited += k;
    }

    /// Unsent messages retry injection every cycle once the stall
    /// clears; a sent message only acts again when the wait bound
    /// closes (delivery wakes it through the destination endpoint).
    fn wake_in(&self, max_wait: u64) -> u64 {
        if self.stalled || !self.sent {
            return 1;
        }
        win(max_wait, self.waited)
    }

    fn step(&mut self, m: &mut Machine) -> Result<Stepped, ProtocolError> {
        if self.managed {
            if let Some(e) = check_restart(m, self.src, self.dst, self.peer_restarts) {
                return Err(e);
            }
        }
        if self.waited > m.config().max_wait_cycles {
            let what = if self.sent { "am4 delivery" } else { "am4 injection" };
            return Err(ProtocolError::timeout(what, self.waited));
        }
        let mut progress = false;
        if !self.sent && !self.stalled {
            // One attempt of the Table 1 single-packet send; identical
            // instruction shape to `Machine::am4_send`'s loop body
            // (the token rides the header word the packet already
            // carries), paid again on every backpressure retry.
            if m.rpc_send_once(self.src, self.dst, self.tag, u64::from(self.token), self.words) {
                self.sent = true;
                self.waited = 0;
                progress = true;
            } else {
                self.stalled = true;
            }
        }
        // Consume the message once it surfaces at the destination's
        // queue head (a cost-free harness peek gated on our delivery
        // token; the poll itself pays Table 1's 27-instruction message
        // path, plus handler dispatch when a handler is registered for
        // the tag).
        let token = self.token;
        if m.rx_peek_at(self.dst).is_some_and(|meta| {
            meta.src == self.src && meta.tag == self.tag && meta.header == token
        }) {
            return match m.poll(self.dst) {
                PollOutcome::Unclaimed(msg) => Ok(Stepped::Done(OpOutcome::Am4(msg.words))),
                // A registered handler consumed the payload; the
                // outcome reports zeros (the handler owns the words).
                PollOutcome::Handled(_) => Ok(Stepped::Done(OpOutcome::Am4([0; 4]))),
                PollOutcome::Idle => unreachable!("gated poll found an empty queue"),
            };
        }
        Ok(if progress { Stepped::Progress } else { Stepped::Idle })
    }
}

// ---------------------------------------------------------------------
// Stream send.
// ---------------------------------------------------------------------

struct StreamOp {
    id: StreamId,
    src: NodeId,
    dst: NodeId,
    data: Vec<u32>,
    n: usize,
    packets: u64,
    rto_iterations: u64,
    // Captured at start (an earlier send on the same stream may still
    // be advancing the sequence when this op is submitted).
    first_seq: u64,
    // Set on recovery re-executions: the first execution's `first_seq`.
    // Resuming from it (instead of reading `next_seq`) keeps the burst
    // in its original sequence range, and the start logic skips packets
    // the receiver has already delivered in-sequence — exactly-once.
    resume_base: Option<u64>,
    target_contig: u64,
    expected_acks: u64,
    outcome: StreamOutcome,
    sent: u64,
    pending_acks: VecDeque<(u64, bool)>,
    stalled: bool,
    rto_due: bool,
    idle_iterations: u64,
    total_iterations: u64,
    // Endpoint restart counters at start; see `check_restart`.
    peer_restarts: (u32, u32),
}

impl StreamOp {
    fn new(
        id: StreamId,
        src: NodeId,
        dst: NodeId,
        data: Vec<u32>,
        n: usize,
        rto_iterations: u64,
    ) -> Self {
        let packets = (data.len() as u64).div_ceil(n as u64);
        StreamOp {
            id,
            src,
            dst,
            data,
            n,
            packets,
            rto_iterations,
            first_seq: 0,
            resume_base: None,
            target_contig: 0,
            expected_acks: 0,
            outcome: StreamOutcome {
                packets,
                acks: 0,
                retransmits: 0,
                duplicates: 0,
                out_of_order: 0,
            },
            sent: 0,
            pending_acks: VecDeque::new(),
            stalled: false,
            rto_due: false,
            idle_iterations: 0,
            total_iterations: 0,
            peer_restarts: (0, 0),
        }
    }

    fn start(&mut self, m: &mut Machine) {
        let st = m.stream_state(self.id);
        let next_seq = st.next_seq;
        let ack_period = st.ack_period().max(1);
        self.first_seq = self.resume_base.unwrap_or(next_seq);
        self.target_contig = self.first_seq + self.packets;
        self.expected_acks = self.packets.div_ceil(ack_period);
        if self.resume_base.is_some() {
            // Resume where the receiver's contiguous prefix ends:
            // packets already delivered in-sequence are not re-sent
            // (exactly-once); anything at or past the receiver's
            // expectation is. Stale unacked copies at the source drain
            // via the ordinary RTO/duplicate-ack machinery.
            self.sent =
                m.stream_expected(self.id).saturating_sub(self.first_seq).min(self.packets);
        }
        self.peer_restarts = (m.restarts_of(self.src), m.restarts_of(self.dst));
        m.stream_entry_charge(self.id);
    }

    fn tick(&mut self) {
        self.tick_n(1);
    }

    fn tick_n(&mut self, k: u64) {
        self.stalled = false;
        // `total_iterations` counts engine cycles without progress
        // anywhere (each reference quantum that advances the clock
        // ticks every running op exactly once), so a batched tick is a
        // plain sum and the RTO counter wraps modulo its period.
        self.total_iterations += k;
        let total = self.idle_iterations + k;
        if total >= self.rto_iterations {
            self.rto_due = true;
            self.idle_iterations = total % self.rto_iterations.max(1);
        } else {
            self.idle_iterations = total;
        }
    }

    /// Injection stalls and ack-flush stalls set `stalled`; receives
    /// are head-gated. With neither a stall nor a due RTO, only the RTO
    /// counter reaching its period or the completion-timeout window
    /// closing can make a step non-idle without new packets.
    fn wake_in(&self, max_wait: u64) -> u64 {
        if self.stalled || self.rto_due {
            return 1;
        }
        win(max_wait, self.total_iterations)
            .min(self.rto_iterations.saturating_sub(self.idle_iterations).max(1))
    }

    fn flush_acks(&mut self, m: &mut Machine) -> bool {
        let mut progress = false;
        while let Some(&(value, cumulative)) = self.pending_acks.front() {
            if self.stalled {
                break;
            }
            if m.stream_try_send_ack(self.id, value, cumulative) {
                self.pending_acks.pop_front();
                progress = true;
            } else {
                self.stalled = true;
            }
        }
        progress
    }

    fn step(&mut self, m: &mut Machine) -> Result<Stepped, ProtocolError> {
        if let Some(e) = check_restart(m, self.src, self.dst, self.peer_restarts) {
            return Err(e);
        }
        let n = self.n;
        let mut progress = false;

        // Acknowledgements owed from earlier drains go out first: they
        // release source window slots.
        progress |= self.flush_acks(m);

        // Fault tolerance in action: retransmit the oldest
        // unacknowledged packet after a quiet window.
        if self.rto_due {
            self.rto_due = false;
            if m.stream_retransmit_oldest(self.id) {
                self.outcome.retransmits += 1;
                progress = true;
            }
        }

        // Phase 1: inject while the window is open.
        while self.sent < self.packets && !self.stalled && m.stream_window_open(self.id) {
            let seq = self.first_seq + self.sent;
            let base = (self.sent as usize) * n;
            let payload: Vec<u32> = (0..n)
                .map(|i| self.data.get(base + i).copied().unwrap_or(0))
                .collect();
            if m.stream_inject(self.id, seq, &payload) {
                self.sent += 1;
                progress = true;
            } else {
                self.stalled = true;
            }
        }

        // Phase 2: the receiver drains data gated on this stream,
        // queueing acknowledgements as it goes.
        while self.pending_acks.is_empty()
            && m.stream_drain_one(self.id, n, &mut self.outcome, &mut self.pending_acks)
        {
            progress = true;
            progress |= self.flush_acks(m);
        }

        // Group-ack flush: the burst fully arrived but the final
        // partial group is not yet acknowledged.
        if m.stream_group_ack_due(self.id, self.target_contig) {
            let cum = m.stream_contig_mark(self.id);
            self.pending_acks.push_back((cum, true));
            m.stream_reset_ack_counter(self.id);
            progress = true;
            progress |= self.flush_acks(m);
        }

        // Phase 3: the source processes acknowledgements.
        while (self.outcome.acks < self.expected_acks || !m.stream_unacked_empty(self.id))
            && m.stream_take_ack(self.id, &mut self.outcome)
        {
            progress = true;
        }

        // Termination: everything sent, delivered, and acknowledged.
        if self.sent == self.packets
            && m.stream_unacked_empty(self.id)
            && m.stream_contig_mark(self.id) >= self.target_contig
            && self.pending_acks.is_empty()
        {
            m.stream_epilogue(self.id, self.data.len());
            return Ok(Stepped::Done(OpOutcome::Stream(self.outcome)));
        }

        if progress {
            self.idle_iterations = 0;
        }
        // `total_iterations` advances in `tick` (once per no-progress
        // engine cycle), making the completion timeout a bound on quiet
        // *time* rather than on scheduler step count — the same clock
        // under both schedulers.
        if self.total_iterations > m.config().max_wait_cycles {
            return Err(ProtocolError::timeout(
                "stream completion",
                self.total_iterations,
            ));
        }
        Ok(if progress { Stepped::Progress } else { Stepped::Idle })
    }
}

// ---------------------------------------------------------------------
// Fault-tolerant finite-sequence transfer.
// ---------------------------------------------------------------------

enum ReliablePhase {
    Handshake,
    Transfer,
    SendAck,
    AwaitAck,
}

struct ReliableOp {
    src: NodeId,
    dst: NodeId,
    data: Vec<u32>,
    n: usize,
    packets: u64,
    policy: RetryPolicy,
    phase: ReliablePhase,
    src_buf: Addr,
    // Session epoch for this (src, dst) handshake, allocated at start;
    // the data nonce is derived from it, so packets of a prior epoch
    // between the same pair are recognizably stale.
    epoch: u32,
    nonce: u32,
    // Restart counters of both endpoints observed at start; a mismatch
    // mid-flight means a peer crashed and restarted — fail fast with a
    // retryable `SessionReset`.
    peer_restarts: (u32, u32),
    // Handshake state.
    req_sent: bool,
    resend_due: bool,
    segment: Option<(u32, Addr)>,
    reply_pending: Option<Feature>,
    hs_attempt: u32,
    hs_waited: u64,
    // Transfer state.
    rx: XferRx,
    seen: Vec<bool>,
    next_packet: u64,
    send_retries: u64,
    data_retransmits: u64,
    nack_rounds: u32,
    drain_attempt: u32,
    drain_waited: u64,
    nack_pending: bool,
    nack_charge_due: bool,
    retransmit_queue: VecDeque<u64>,
    // Acknowledgement state.
    ack_attempt: u32,
    ack_waited: u64,
    ack_probes: u32,
    probe_pending: bool,
    reack_pending: bool,
    stalled: bool,
}

impl ReliableOp {
    fn new(src: NodeId, dst: NodeId, data: Vec<u32>, n: usize, policy: RetryPolicy) -> Self {
        let packets = (data.len() as u64).div_ceil(n as u64);
        ReliableOp {
            src,
            dst,
            data,
            n,
            packets,
            policy,
            phase: ReliablePhase::Handshake,
            src_buf: Addr(0),
            epoch: 0,
            nonce: 0,
            peer_restarts: (0, 0),
            req_sent: false,
            resend_due: false,
            segment: None,
            reply_pending: None,
            hs_attempt: 0,
            hs_waited: 0,
            rx: XferRx {
                buffer: Addr(0),
                packets_expected: packets,
                packets_received: 0,
            },
            seen: vec![false; packets as usize],
            next_packet: 0,
            send_retries: 0,
            data_retransmits: 0,
            nack_rounds: 0,
            drain_attempt: 0,
            drain_waited: 0,
            nack_pending: false,
            nack_charge_due: false,
            retransmit_queue: VecDeque::new(),
            ack_attempt: 0,
            ack_waited: 0,
            ack_probes: 0,
            probe_pending: false,
            reack_pending: false,
            stalled: false,
        }
    }

    fn start(&mut self, m: &mut Machine) {
        self.src_buf = m.write_buffer(self.src, &self.data);
        // Epoch allocation is host-side session bookkeeping (the epoch
        // rides in header fields the wire format already carries), so a
        // clean run stays instruction-identical to the plain protocol.
        self.epoch = m.next_session_epoch(self.src, self.dst);
        self.nonce = (self.epoch & 0xfff) << OFFSET_BITS;
        self.peer_restarts = (m.restarts_of(self.src), m.restarts_of(self.dst));
    }

    fn tick(&mut self) {
        self.tick_n(1);
    }

    fn tick_n(&mut self, k: u64) {
        self.stalled = false;
        match self.phase {
            ReliablePhase::Handshake => self.hs_waited += k,
            ReliablePhase::Transfer => self.drain_waited += k,
            ReliablePhase::SendAck | ReliablePhase::AwaitAck => self.ack_waited += k,
        }
    }

    /// Per-phase quiet windows. Only the phase's own waited counter
    /// advances on a tick, so the next timer-driven action (handshake
    /// resend, receiver NACK round, ack resend/probe) is a closed form
    /// over that counter. A source mid-burst or a receiver mid-drain is
    /// packet-driven: it acts on arrivals (endpoint wakes) or because
    /// an injection stall cleared, never from a timer alone — `MAX`
    /// with the no-progress watchdog as the backstop.
    fn wake_in(&self, max_wait: u64) -> u64 {
        if self.stalled {
            return 1;
        }
        match self.phase {
            ReliablePhase::Handshake => {
                if self.req_sent {
                    win(self.policy.backoff(self.hs_attempt), self.hs_waited)
                } else {
                    1
                }
            }
            ReliablePhase::Transfer => {
                if self.rx.packets_received < self.rx.packets_expected
                    && self.next_packet == self.packets
                {
                    // Receiver drain window: a quiet stretch triggers
                    // the next NACK round.
                    win(self.policy.backoff(self.drain_attempt), self.drain_waited)
                } else {
                    u64::MAX
                }
            }
            ReliablePhase::SendAck => win(max_wait, self.ack_waited),
            ReliablePhase::AwaitAck => win(self.policy.backoff(self.ack_attempt), self.ack_waited),
        }
    }

    fn step(&mut self, m: &mut Machine) -> Result<Stepped, ProtocolError> {
        if let Some(e) = check_restart(m, self.src, self.dst, self.peer_restarts) {
            return Err(e);
        }
        if self.sweep_stale(m) {
            return Ok(Stepped::Progress);
        }
        match self.phase {
            ReliablePhase::Handshake => self.step_handshake(m),
            ReliablePhase::Transfer => self.step_transfer(m),
            ReliablePhase::SendAck => self.step_send_ack(m),
            ReliablePhase::AwaitAck => self.step_await_ack(m),
        }
    }

    /// Discard stale packets of *prior* epochs between this pair at
    /// either endpoint's queue head: duplicated handshakes or data of an
    /// earlier same-pair transfer must not be mistaken for this
    /// session's traffic. Every discard is recovery work
    /// ([`Feature::FaultTol`]); a clean run peeks (cost-free) and finds
    /// nothing stale. Returns `true` if anything was discarded.
    fn sweep_stale(&mut self, m: &mut Machine) -> bool {
        let mut any = false;
        while let Some(meta) = m.rx_peek_at(self.src) {
            if meta.src != self.dst {
                break;
            }
            let stale = match meta.tag {
                Tags::XFER_REPLY | Tags::XFER_ACK => meta.header != self.epoch,
                Tags::XFER_NACK => (meta.header & !OFFSET_MASK) != self.nonce,
                _ => false,
            };
            if !stale {
                break;
            }
            m.discard_stray(self.src);
            any = true;
        }
        while let Some(meta) = m.rx_peek_at(self.dst) {
            if meta.src != self.src {
                break;
            }
            let stale = match meta.tag {
                Tags::XFER_REQ | Tags::XFER_PROBE => meta.header != self.epoch,
                Tags::XFER_DATA => (meta.header & !OFFSET_MASK) != self.nonce,
                _ => false,
            };
            if !stale {
                break;
            }
            m.discard_stray(self.dst);
            any = true;
        }
        any
    }

    fn step_handshake(&mut self, m: &mut Machine) -> Result<Stepped, ProtocolError> {
        let (src, dst, n) = (self.src, self.dst, self.n);
        // Window expiry: the reply is overdue — retransmit the request.
        if self.req_sent && self.hs_waited > self.policy.backoff(self.hs_attempt) {
            self.hs_attempt += 1;
            if self.hs_attempt >= self.policy.max_attempts {
                return Err(ProtocolError::Timeout {
                    waiting_for: "xfer reply",
                    cycles: self.policy.backoff(self.hs_attempt - 1),
                    node: Some(src),
                    attempts: self.hs_attempt,
                });
            }
            self.resend_due = true;
            self.hs_waited = 0;
        }
        let mut progress = false;
        // Allocation request. The first issue is ordinary buffer
        // management; recovery retransmissions are fault tolerance.
        if !self.stalled && (!self.req_sent || self.resend_due) {
            let feature = if self.req_sent {
                Feature::FaultTol
            } else {
                Feature::BufferMgmt
            };
            // The request is epoch-stamped: the header carries the
            // session epoch, the length rides in the (always-sent)
            // payload words — same packet shape, same cost.
            let len = self.data.len() as u32;
            let epoch = self.epoch;
            let node = m.node_mut(src);
            let sent = {
                let cpu = node.cpu.clone();
                cpu.with_feature(feature, |_| {
                    node.send_ctl(dst, Tags::XFER_REQ, epoch, [len, 0, 0, 0])
                })
            };
            if sent {
                self.req_sent = true;
                self.resend_due = false;
                progress = true;
            } else {
                self.stalled = true;
            }
        }
        // The destination answers a request — the first from the
        // allocation body (buffer management), a duplicate from its
        // epoch-keyed session table (fault tolerance). The table lookup
        // is what a crash-restart observably erases.
        if self.reply_pending.is_none() && peek_is(m, dst, src, Tags::XFER_REQ) {
            let open = m.sessions.get(&(dst, src)).copied().filter(|s| s.epoch == self.epoch);
            if let Some(entry) = open {
                debug_assert_eq!(Some((entry.seg, entry.buffer)), self.segment);
                let node = m.node_mut(dst);
                let cpu = node.cpu.clone();
                cpu.with_feature(Feature::FaultTol, |_| {
                    let (_, tag, _, _) = node.recv_ctl_now();
                    debug_assert_eq!(tag, Tags::XFER_REQ);
                });
                self.reply_pending = Some(Feature::FaultTol);
            } else {
                // A leftover same-pair session of an *earlier* epoch —
                // its sender crashed mid-transfer, or the op was
                // re-executed by the recovery plane — is reclaimed
                // before the fresh allocation. Recovery work, billed
                // like the TTL sweep would bill it.
                if m.sessions.get(&(dst, src)).is_some_and(|s| s.epoch != self.epoch) {
                    m.sessions.remove(&(dst, src));
                    let cpu = m.cpu(dst);
                    cpu.with_feature(Feature::FaultTol, |c| {
                        c.reg(Fine::RegOp, recovery::SESSION_GC_REG);
                        c.mem_store(recovery::SESSION_GC_MEM);
                    });
                }
                let epoch = self.epoch;
                let node = m.node_mut(dst);
                let cpu = node.cpu.clone();
                let seg = cpu.with_feature(Feature::BufferMgmt, |_| {
                    let (_, tag, header, words) = node.recv_ctl_now();
                    debug_assert_eq!(tag, Tags::XFER_REQ);
                    debug_assert_eq!(header, epoch);
                    let words = words[0] as usize;
                    let buffer = node.mem.alloc(words.div_ceil(n) * n);
                    node.cpu.reg(Fine::RegOp, segment::ASSOCIATE_REG);
                    node.cpu.mem_store(segment::ASSOCIATE_MEM);
                    ((buffer.0 & 0xffff) as u32 ^ 0x5e60_0000, buffer)
                });
                self.segment = Some(seg);
                // Record the open session so a crash-restart of the
                // receiver observably erases it — and so the TTL sweep
                // can reclaim it if the *sender* crashes and never
                // finishes the transfer (host-side bookkeeping, no
                // simulated instructions on the clean path).
                let opened_at = clock(m);
                m.sessions.insert(
                    (dst, src),
                    SessionEntry { epoch: self.epoch, seg: seg.0, buffer: seg.1, opened_at },
                );
                self.reply_pending = Some(Feature::BufferMgmt);
            }
            progress = true;
        }
        // The reply itself.
        if let Some(feature) = self.reply_pending {
            if !self.stalled {
                let seg = self.segment.expect("reply implies allocation").0;
                let epoch = self.epoch;
                let node = m.node_mut(dst);
                let sent = {
                    let cpu = node.cpu.clone();
                    cpu.with_feature(feature, |_| {
                        node.send_ctl(src, Tags::XFER_REPLY, epoch, [seg, 0, 0, 0])
                    })
                };
                if sent {
                    self.reply_pending = None;
                    progress = true;
                } else {
                    self.stalled = true;
                }
            }
        }
        // Source receives the reply. On the first window this is what
        // the plain protocol pays (buffer management); after a
        // retransmission it is recovery work.
        if let Some((seg, buffer)) = self.segment.filter(|_| peek_is(m, src, dst, Tags::XFER_REPLY)) {
            let feature = if self.hs_attempt == 0 {
                Feature::BufferMgmt
            } else {
                Feature::FaultTol
            };
            let epoch = self.epoch;
            let node = m.node_mut(src);
            let cpu = node.cpu.clone();
            cpu.with_feature(feature, |_| {
                let (_, tag, header, words) = node.recv_ctl_now();
                debug_assert_eq!(tag, Tags::XFER_REPLY);
                debug_assert_eq!(header, epoch);
                debug_assert_eq!(words[0], seg);
            });
            self.rx.buffer = buffer;
            transfer_prologue(m, src, dst);
            self.phase = ReliablePhase::Transfer;
            self.drain_waited = 0;
            return Ok(Stepped::Progress);
        }
        Ok(if progress { Stepped::Progress } else { Stepped::Idle })
    }

    fn step_transfer(&mut self, m: &mut Machine) -> Result<Stepped, ProtocolError> {
        let (src, dst, n) = (self.src, self.dst, self.n);
        // Drain stalled for a whole backoff window with packets still
        // missing: recover via NACK + selective retransmission.
        if self.rx.packets_received < self.rx.packets_expected
            && self.next_packet == self.packets
            && self.drain_waited > self.policy.backoff(self.drain_attempt)
        {
            self.drain_attempt += 1;
            if self.drain_attempt >= self.policy.max_attempts {
                return Err(ProtocolError::Timeout {
                    waiting_for: "xfer data packets",
                    cycles: self.drain_waited,
                    node: Some(dst),
                    attempts: self.drain_attempt,
                });
            }
            self.nack_rounds += 1;
            self.nack_pending = true;
            self.nack_charge_due = true;
            self.drain_waited = 0;
        }
        let mut progress = false;
        // Selective retransmissions named by a received NACK go first.
        while let Some(&k) = self.retransmit_queue.front() {
            if self.stalled {
                break;
            }
            let offset = k * n as u64;
            let nonce = self.nonce;
            let src_buf = self.src_buf;
            let cpu = m.cpu(src);
            let accepted = cpu.with_feature(Feature::FaultTol, |_| {
                m.send_data_packet(src, dst, src_buf, offset, n, PayloadEngine::Cpu, nonce)
            });
            if accepted {
                self.retransmit_queue.pop_front();
                self.data_retransmits += 1;
                progress = true;
            } else {
                self.stalled = true;
            }
        }
        // Initial injection — identical to the plain protocol.
        if !self.stalled {
            while self.next_packet < self.packets {
                let offset = self.next_packet * n as u64;
                if m.send_data_packet(
                    src,
                    dst,
                    self.src_buf,
                    offset,
                    n,
                    PayloadEngine::Cpu,
                    self.nonce,
                ) {
                    self.next_packet += 1;
                    progress = true;
                } else {
                    self.send_retries += 1;
                    self.stalled = true;
                    break;
                }
            }
        }
        // Fault-tolerant drain. Anything from our source at the queue
        // head is ours to classify (data, duplicated handshake
        // request, stray probe).
        while self.rx.packets_received < self.rx.packets_expected {
            let Some(meta) = m.rx_peek_at(dst) else { break };
            if meta.src != src
                || !(meta.tag == Tags::XFER_DATA
                    || meta.tag == Tags::XFER_REQ
                    || meta.tag == Tags::XFER_PROBE)
            {
                break;
            }
            if m.recv_one_data_tolerant(dst, n, &mut self.rx, &mut self.seen, self.nonce) {
                progress = true;
            } else {
                break;
            }
        }
        // A late duplicated reply at the source is recovery noise.
        if peek_is(m, src, dst, Tags::XFER_REPLY) {
            m.discard_stray(src);
            progress = true;
        }
        // NACK emission (destination): gap scan + NACK packet.
        if self.nack_pending && !self.stalled {
            if self.nack_charge_due {
                let node = m.node_mut(dst);
                let cpu = node.cpu.clone();
                cpu.with_feature(Feature::FaultTol, |_| {
                    node.cpu.reg(Fine::RegOp, recovery::GAP_SCAN_REG);
                    node.cpu.mem_store(recovery::NACK_STATE_MEM);
                });
                self.nack_charge_due = false;
            }
            match first_missing(&self.seen) {
                None => self.nack_pending = false, // gap closed meanwhile
                Some(first) => {
                    let bits = missing_bitmap(&self.seen, first);
                    // Epoch-stamp the NACK: nonce in the high bits, the
                    // first missing offset (< 2^20) below it.
                    let hdr = self.nonce | first as u32;
                    let node = m.node_mut(dst);
                    let sent = {
                        let cpu = node.cpu.clone();
                        cpu.with_feature(Feature::FaultTol, |_| {
                            node.send_ctl(src, Tags::XFER_NACK, hdr, bits)
                        })
                    };
                    if sent {
                        self.nack_pending = false;
                        progress = true;
                    } else {
                        self.stalled = true;
                    }
                }
            }
        }
        // NACK reception (source): build the retransmit queue.
        if peek_is(m, src, dst, Tags::XFER_NACK) {
            let node = m.node_mut(src);
            let cpu = node.cpu.clone();
            let (first, bits) = cpu.with_feature(Feature::FaultTol, |c| {
                let (_, tag, header, words) = node.recv_ctl_now();
                debug_assert_eq!(tag, Tags::XFER_NACK);
                c.reg(Fine::RegOp, recovery::RETRANSMIT_SETUP_REG);
                (header & OFFSET_MASK, words)
            });
            for rel in 0..128u32 {
                if bits[rel as usize / 32] >> (rel % 32) & 1 == 0 {
                    continue;
                }
                let k = u64::from(first) + u64::from(rel);
                if k >= self.packets {
                    break;
                }
                self.retransmit_queue.push_back(k);
            }
            progress = true;
        }
        if progress {
            self.drain_waited = 0;
        }
        if self.next_packet == self.packets
            && self.rx.packets_received == self.rx.packets_expected
            && self.retransmit_queue.is_empty()
            && !self.nack_pending
        {
            // Free the segment — identical to the plain protocol.
            let node = m.node_mut(dst);
            node.cpu.clone().with_feature(Feature::InOrder, |cpu| {
                cpu.reg(Fine::RegOp, xfer_order::DST_FINAL);
            });
            node.cpu.mem_store(xfer_recv::EXIT_STATE_MEM);
            node.cpu.clone().with_feature(Feature::BufferMgmt, |cpu| {
                cpu.reg(Fine::RegOp, segment::DISASSOCIATE_REG);
                cpu.mem_store(segment::DISASSOCIATE_MEM);
            });
            m.sessions.remove(&(dst, src));
            self.phase = ReliablePhase::SendAck;
            self.ack_waited = 0;
            return Ok(Stepped::Progress);
        }
        Ok(if progress { Stepped::Progress } else { Stepped::Idle })
    }

    fn step_send_ack(&mut self, m: &mut Machine) -> Result<Stepped, ProtocolError> {
        if self.ack_waited > m.config().max_wait_cycles {
            return Err(ProtocolError::timeout(
                "control-packet injection",
                self.ack_waited,
            ));
        }
        if self.stalled {
            return Ok(Stepped::Idle);
        }
        let seg = self.segment.expect("segment allocated").0;
        let epoch = self.epoch;
        let src = self.src;
        let node = m.node_mut(self.dst);
        let sent = {
            let cpu = node.cpu.clone();
            cpu.with_feature(Feature::FaultTol, |_| {
                node.send_ctl(src, Tags::XFER_ACK, epoch, [seg, 0, 0, 0])
            })
        };
        if sent {
            self.phase = ReliablePhase::AwaitAck;
            self.ack_waited = 0;
            Ok(Stepped::Progress)
        } else {
            self.stalled = true;
            Ok(Stepped::Idle)
        }
    }

    fn step_await_ack(&mut self, m: &mut Machine) -> Result<Stepped, ProtocolError> {
        let (src, dst) = (self.src, self.dst);
        let seg = self.segment.expect("segment allocated").0;
        let epoch = self.epoch;
        // Window expiry: the acknowledgement is overdue — probe.
        if self.ack_waited > self.policy.backoff(self.ack_attempt) {
            self.ack_attempt += 1;
            if self.ack_attempt >= self.policy.max_attempts {
                return Err(ProtocolError::Timeout {
                    waiting_for: "xfer acknowledgement",
                    cycles: self.policy.backoff(self.ack_attempt - 1),
                    node: Some(src),
                    attempts: self.ack_attempt,
                });
            }
            self.ack_probes += 1;
            self.probe_pending = true;
            self.ack_waited = 0;
        }
        let mut progress = false;
        if self.probe_pending && !self.stalled {
            let node = m.node_mut(src);
            let sent = {
                let cpu = node.cpu.clone();
                cpu.with_feature(Feature::FaultTol, |_| {
                    node.send_ctl(dst, Tags::XFER_PROBE, epoch, [seg, 0, 0, 0])
                })
            };
            if sent {
                self.probe_pending = false;
                progress = true;
            } else {
                self.stalled = true;
            }
        }
        // The destination answers a probe with a re-acknowledgement.
        if peek_is(m, dst, src, Tags::XFER_PROBE) {
            let node = m.node_mut(dst);
            let cpu = node.cpu.clone();
            cpu.with_feature(Feature::FaultTol, |_| {
                let (_, tag, _, _) = node.recv_ctl_now();
                debug_assert_eq!(tag, Tags::XFER_PROBE);
            });
            self.reack_pending = true;
            progress = true;
        }
        if self.reack_pending && !self.stalled {
            let node = m.node_mut(dst);
            let sent = {
                let cpu = node.cpu.clone();
                cpu.with_feature(Feature::FaultTol, |_| {
                    node.send_ctl(src, Tags::XFER_ACK, epoch, [seg, 0, 0, 0])
                })
            };
            if sent {
                self.reack_pending = false;
                progress = true;
            } else {
                self.stalled = true;
            }
        }
        // Stray late data at the destination (retransmitted duplicates
        // still in flight) is discarded as recovery work.
        if m.rx_peek_at(dst).is_some_and(|meta| {
            meta.src == src && (meta.tag == Tags::XFER_DATA || meta.tag == Tags::XFER_REQ)
        }) {
            m.discard_stray(dst);
            progress = true;
        }
        // A duplicated reply of this same epoch arriving after the
        // transfer completed (handshake retransmission crossing the
        // data phase) would otherwise sit at the head of the source's
        // queue and block the final acknowledgement.
        if peek_is(m, src, dst, Tags::XFER_REPLY) {
            m.discard_stray(src);
            progress = true;
        }
        if peek_is(m, src, dst, Tags::XFER_ACK) {
            let node = m.node_mut(src);
            let cpu = node.cpu.clone();
            cpu.with_feature(Feature::FaultTol, |_| {
                let (_, tag, header, words) = node.recv_ctl_now();
                debug_assert_eq!(tag, Tags::XFER_ACK);
                debug_assert_eq!(header, epoch);
                debug_assert_eq!(words[0], seg);
            });
            return Ok(Stepped::Done(OpOutcome::Reliable(ReliableOutcome {
                xfer: XferOutcome {
                    dst_buffer: self.rx.buffer,
                    packets: self.packets,
                    segment_id: seg,
                    send_retries: self.send_retries,
                },
                handshake_retries: self.hs_attempt,
                data_retransmits: self.data_retransmits,
                nack_rounds: self.nack_rounds,
                ack_probes: self.ack_probes,
            })));
        }
        // A stale NACK arriving after the data phase completed.
        if peek_is(m, src, dst, Tags::XFER_NACK) {
            m.discard_stray(src);
            progress = true;
        }
        Ok(if progress { Stepped::Progress } else { Stepped::Idle })
    }
}

/// Compare both endpoints' crash-restart counters against the values
/// `seen` at the operation's start. A mismatch means that peer crashed
/// and lost its protocol state mid-flight: fail fast with the retryable
/// [`ProtocolError::SessionReset`] instead of timing out against a node
/// that no longer remembers the session. Pure host-side comparison —
/// no simulated instructions.
fn check_restart(
    m: &Machine,
    src: NodeId,
    dst: NodeId,
    seen: (u32, u32),
) -> Option<ProtocolError> {
    if m.restarts_of(src) != seen.0 {
        return Some(ProtocolError::SessionReset { node: src });
    }
    if m.restarts_of(dst) != seen.1 {
        return Some(ProtocolError::SessionReset { node: dst });
    }
    None
}

fn first_missing(seen: &[bool]) -> Option<u64> {
    seen.iter().position(|&s| !s).map(|i| i as u64)
}

fn missing_bitmap(seen: &[bool], first: u64) -> [u32; 4] {
    let mut bits = [0u32; 4];
    for (i, &got) in seen.iter().enumerate().skip(first as usize).take(first as usize + 128) {
        if !got {
            let rel = i - first as usize;
            if rel >= 128 {
                break;
            }
            bits[rel / 32] |= 1 << (rel % 32);
        }
    }
    bits
}
