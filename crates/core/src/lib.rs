//! # timego-am — the messaging layer
//!
//! The core crate of the `timego` reproduction of Karamcheti & Chien,
//! *"Software Overhead in Messaging Layers: Where Does the Time Go?"*
//! (ASPLOS 1994): an active-messages layer and the multi-packet
//! protocols the paper dissects, running over the simulated substrates
//! of [`timego_netsim`] with instruction-level cost accounting from
//! [`timego_cost`].
//!
//! ## Protocols
//!
//! | paper protocol | CMAM-like (any substrate) | high-level network (§4) |
//! |---|---|---|
//! | single-packet delivery | [`Machine::am4_send`] / [`Machine::poll`] | identical |
//! | finite sequence, multi-packet | [`Machine::xfer`] | [`Machine::hl_xfer`] |
//! | indefinite sequence, multi-packet | [`Machine::stream_send`] | [`Machine::hl_stream_send`] |
//!
//! Variants for the paper's discussion sections: DMA payload injection
//! ([`Machine::xfer_dma`], §5), segment-reuse batching
//! ([`Machine::xfer_batch`]), and interrupt-driven reception
//! ([`Machine::deliver_by_interrupt`], footnote 2).
//!
//! The CMAM-like protocols implement in software everything the raw
//! network lacks: the `xfer` protocol preallocates a destination segment
//! with a request/reply handshake, tags each packet with a target-buffer
//! offset, and finishes with an end-to-end acknowledgement; the `stream`
//! protocol sequences packets, buffers out-of-order arrivals, keeps
//! source copies for retransmission, and acknowledges (per packet or in
//! groups). The high-level variants require a substrate with
//! [`Guarantees::HIGH_LEVEL`](timego_netsim::Guarantees) semantics and
//! shrink to bare data movement, as the paper's §4 shows.
//!
//! All data movement is real: payloads travel through the network
//! substrate, out-of-order packets are really reordered by receiver
//! software, lost packets are really retransmitted. Instruction
//! accounting (calibrated to the paper's Tables 1–3; see `DESIGN.md §3`)
//! rides along on every NI register access, memory access, and annotated
//! register operation.
//!
//! ## Example
//!
//! ```
//! use timego_am::{CmamConfig, Machine};
//! use timego_netsim::{DeliveryScript, NodeId, ScriptedNetwork};
//! use timego_ni::share;
//!
//! # fn main() -> Result<(), timego_am::ProtocolError> {
//! let net = share(ScriptedNetwork::new(2, DeliveryScript::InOrder));
//! let mut m = Machine::new(net, 2, CmamConfig::default());
//! let (src, dst) = (NodeId::new(0), NodeId::new(1));
//!
//! let data: Vec<u32> = (0..64).collect();
//! let outcome = m.xfer(src, dst, &data)?;
//! assert_eq!(m.read_buffer(dst, outcome.dst_buffer, data.len()), data);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod am;
mod batch;
mod costs;
mod dma;
mod engine;
mod error;
mod hl;
mod interrupt;
mod machine;
mod measure;
mod retry;
mod rpc;
mod sched;
mod stream;
mod xfer;
mod xfer_reliable;

pub use am::{Am4Msg, PollOutcome};
pub use dma::{cmam_finite_dma, measure_xfer_dma};
pub use engine::{Engine, EngineEvent, OpId, OpOutcome, TracedEvent};
pub use error::ProtocolError;
pub use interrupt::{polling_vs_interrupt, DisciplineCosts, InterruptModel};
pub use machine::{CmamConfig, Machine, Tags};
pub use measure::{
    measure_hl_stream, measure_hl_xfer, measure_single_packet, measure_stream, measure_xfer,
};
pub use retry::{RecoveryPolicy, RetryPolicy};
pub use rpc::{classify_poll, RpcEvent};
pub use sched::{PhaseTotal, SchedCounters, SchedMode, SchedPhase, SchedProfiler, Slab, TimingWheel};
pub use stream::{StreamConfig, StreamId, StreamOutcome};
pub use xfer::XferOutcome;
pub use xfer_reliable::ReliableOutcome;
