//! The CMAM indefinite-sequence, multi-packet protocol (ordered
//! streams / sockets).
//!
//! Protocol steps (Figure 4 of the paper):
//!
//! 1. the sender **buffers** each outgoing packet (to support
//!    retransmission) — fault tolerance;
//! 2. the sender transmits it as a single-packet transfer carrying a
//!    **sequence number** — base + in-order delivery;
//! 3. the receiver **buffers out-of-order packets**, invoking the user
//!    handler for each packet that arrives in transmission order —
//!    in-order delivery;
//! 4. each packet (or each group of [`StreamConfig::ack_period`]
//!    packets) is **acknowledged**, releasing source storage — fault
//!    tolerance.
//!
//! Unlike the finite-sequence protocol, this one is genuinely reliable:
//! unacknowledged packets are retransmitted after a timeout and
//! duplicates are discarded (and re-acknowledged, in case the
//! acknowledgement itself was lost), so a stream completes even over a
//! corrupting, detect-only network.

use std::collections::{BTreeMap, VecDeque};

use timego_cost::{Feature, Fine};
use timego_netsim::NodeId;

use crate::costs::{ctl_send, stream_dst, stream_src};
use crate::engine::{Engine, OpOutcome};
use crate::retry::RecoveryPolicy;
use crate::error::ProtocolError;
use crate::machine::{Machine, Tags};

/// Identifies an open stream on a [`Machine`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct StreamId(pub(crate) usize);

/// Stream protocol parameters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StreamConfig {
    /// Acknowledge every `ack_period` packets (1 = the paper's
    /// per-packet acknowledgement; larger values are its group-
    /// acknowledgement variant, which trades source-buffer residency
    /// for fewer acknowledgements).
    pub ack_period: u64,
    /// Maximum unacknowledged packets in flight (source-buffer slots).
    pub window: usize,
    /// Driver iterations without progress before the oldest
    /// unacknowledged packet is retransmitted.
    pub rto_iterations: u64,
}

impl Default for StreamConfig {
    fn default() -> Self {
        StreamConfig {
            ack_period: 1,
            window: 1 << 20,
            rto_iterations: 4096,
        }
    }
}

/// Result of one [`Machine::stream_send`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StreamOutcome {
    /// Data packets transmitted (excluding retransmissions).
    pub packets: u64,
    /// Acknowledgement packets processed at the source.
    pub acks: u64,
    /// Retransmissions performed.
    pub retransmits: u64,
    /// Duplicate packets discarded at the receiver.
    pub duplicates: u64,
    /// Packets that arrived out of transmission order and were buffered.
    pub out_of_order: u64,
}

/// Per-stream protocol state (split between what conceptually lives at
/// the source and at the destination; costs are always charged to the
/// owning node's recorder).
#[derive(Debug)]
pub(crate) struct StreamState {
    pub(crate) src: NodeId,
    pub(crate) dst: NodeId,
    cfg: StreamConfig,
    // Source side.
    pub(crate) next_seq: u64,
    unacked: BTreeMap<u64, Vec<u32>>,
    // Destination side.
    expected: u64,
    ooo: BTreeMap<u64, Vec<u32>>,
    arrived_contig: u64,
    arrivals_since_ack: u64,
    delivered: Vec<u32>,
    total_pushed_words: usize,
}

impl StreamState {
    /// The configured acknowledgement grouping (at least 1).
    pub(crate) fn ack_period(&self) -> u64 {
        self.cfg.ack_period.max(1)
    }

    /// Erase the in-flight cursors a crash-restart of `node` loses: the
    /// source side forgets what it had in flight, the destination side
    /// forgets what arrived out of order. Delivered words and sequence
    /// counters survive on the *other* endpoint, so only state held at
    /// the crashed node is dropped. Cost-free shadow-state erasure.
    pub(crate) fn crash_reset(&mut self, node: NodeId) {
        if self.src == node {
            self.unacked.clear();
        }
        if self.dst == node {
            self.ooo.clear();
        }
    }

    /// Idle iterations before the retransmission timer fires.
    pub(crate) fn rto_iterations(&self) -> u64 {
        self.cfg.rto_iterations
    }
}

impl Machine {
    /// Open a stream (a static channel, in the paper's terms) from `src`
    /// to `dst`.
    ///
    /// # Panics
    ///
    /// Panics if either node is out of range or `src == dst`.
    pub fn open_stream(&mut self, src: NodeId, dst: NodeId, cfg: StreamConfig) -> StreamId {
        assert!(src.index() < self.nodes.len() && dst.index() < self.nodes.len());
        assert_ne!(src, dst, "stream endpoints must differ");
        let id = StreamId(self.streams.len());
        self.streams.push(StreamState {
            src,
            dst,
            cfg,
            next_seq: 0,
            unacked: BTreeMap::new(),
            expected: 0,
            ooo: BTreeMap::new(),
            arrived_contig: 0,
            arrivals_since_ack: 0,
            delivered: Vec::new(),
            total_pushed_words: 0,
        });
        id
    }

    /// The words delivered *in order* to the receiving endpoint so far.
    ///
    /// # Panics
    ///
    /// Panics if `id` is stale.
    pub fn stream_received(&self, id: StreamId) -> &[u32] {
        &self.streams[id.0].delivered
    }

    /// Send `data` down the stream, driving both endpoints until every
    /// packet is delivered, in order, and every source buffer slot is
    /// released by an acknowledgement.
    ///
    /// # Errors
    ///
    /// [`ProtocolError::BadTransfer`] for empty data;
    /// [`ProtocolError::Timeout`] if the stream cannot make progress for
    /// the configured bound (even with retransmission — e.g. the
    /// substrate is wedged).
    ///
    /// # Panics
    ///
    /// Panics if `id` is stale.
    pub fn stream_send(&mut self, id: StreamId, data: &[u32]) -> Result<StreamOutcome, ProtocolError> {
        let mut eng = Engine::new();
        let op = eng.submit_stream_send(self, id, data)?;
        eng.run(self);
        match eng.take_outcome(op).expect("op completed") {
            Ok(OpOutcome::Stream(out)) => Ok(out),
            Err(e) => Err(e),
            Ok(_) => unreachable!("stream op yields a stream outcome"),
        }
    }

    /// [`Machine::stream_send`] hardened against node crash-restarts:
    /// when the send dies with a retryable error (an endpoint crashed
    /// mid-burst, the watchdog fired), the engine parks the op for the
    /// policy's backoff window and *resumes* it — the re-execution keeps
    /// the original sequence range and consults the receiver's
    /// next-expected cursor, so packets the first execution already
    /// delivered are skipped, convergence is exactly-once and the
    /// delivered byte stream is exact. Every re-execution bills the
    /// session-restart shape to `Feature::FaultTol` at the source; a
    /// clean run is instruction-identical to [`Machine::stream_send`].
    ///
    /// Returns the outcome plus the number of re-executions (zero when
    /// the first execution succeeded).
    ///
    /// # Errors
    ///
    /// [`ProtocolError::BadTransfer`] for empty data; otherwise the last
    /// execution's error once the recovery budget is exhausted
    /// (non-retryable errors surface immediately).
    ///
    /// # Panics
    ///
    /// Panics if `id` is stale or `recovery.max_executions` is zero.
    pub fn stream_send_recovering(
        &mut self,
        id: StreamId,
        data: &[u32],
        recovery: &RecoveryPolicy,
    ) -> Result<(StreamOutcome, u32), ProtocolError> {
        let mut eng = Engine::new();
        let op = eng.submit_stream_send_recovering(self, id, data, recovery)?;
        eng.run(self);
        let re_executions = eng.recovery_executions(op);
        match eng.take_outcome(op).expect("op completed") {
            Ok(OpOutcome::Stream(out)) => Ok((out, re_executions)),
            Err(e) => Err(e),
            Ok(_) => unreachable!("stream op yields a stream outcome"),
        }
    }

    /// Immutable view of a stream's protocol state.
    ///
    /// # Panics
    ///
    /// Panics if `id` is stale.
    pub(crate) fn stream_state(&self, id: StreamId) -> &StreamState {
        &self.streams[id.0]
    }

    /// The receiver's next-expected (contiguous) sequence number for
    /// `id` — what a resumed send consults to skip packets the first
    /// execution already delivered.
    ///
    /// # Panics
    ///
    /// Panics if `id` is stale.
    pub(crate) fn stream_expected(&self, id: StreamId) -> u64 {
        self.streams[id.0].expected
    }

    /// Per-burst receiver entry: one receive poll + handler prologue
    /// (the "+13" constant of Table 3's destination base).
    pub(crate) fn stream_entry_charge(&mut self, id: StreamId) {
        let dstn = self.streams[id.0].dst;
        let node = self.node_mut(dstn);
        node.cpu.call(stream_dst::ENTRY_CALL);
        node.cpu.ctrl(stream_dst::ENTRY_CTRL);
        let _ = node.ni.poll_status();
    }

    /// Whether the source window admits another in-flight packet.
    pub(crate) fn stream_window_open(&self, id: StreamId) -> bool {
        let st = &self.streams[id.0];
        st.unacked.len() < st.cfg.window
    }

    /// Retransmit the oldest unacknowledged packet (one attempt, charged
    /// to fault tolerance). Returns `false` when nothing is buffered.
    pub(crate) fn stream_retransmit_oldest(&mut self, id: StreamId) -> bool {
        let Some((&seq, payload)) = self.streams[id.0].unacked.iter().next().map(|(s, p)| (s, p.clone()))
        else {
            return false;
        };
        let (srcn, dstn) = (self.streams[id.0].src, self.streams[id.0].dst);
        let node = self.node_mut(srcn);
        node.cpu.clone().with_feature(Feature::FaultTol, |_| {
            let _ = send_stream_packet(node, dstn, Tags::STREAM_DATA, seq, &payload);
        });
        true
    }

    /// Whether the burst-closing cumulative acknowledgement is owed: the
    /// whole burst has arrived but a partial final group has not been
    /// acknowledged yet.
    pub(crate) fn stream_group_ack_due(&self, id: StreamId, target_contig: u64) -> bool {
        let st = &self.streams[id.0];
        st.cfg.ack_period > 1 && st.arrived_contig >= target_contig && st.arrivals_since_ack > 0
    }

    /// The receiver's contiguous-arrival mark.
    pub(crate) fn stream_contig_mark(&self, id: StreamId) -> u64 {
        self.streams[id.0].arrived_contig
    }

    /// Reset the receiver's arrivals-since-acknowledgement counter.
    pub(crate) fn stream_reset_ack_counter(&mut self, id: StreamId) {
        self.streams[id.0].arrivals_since_ack = 0;
    }

    /// Whether every source buffer slot has been released.
    pub(crate) fn stream_unacked_empty(&self, id: StreamId) -> bool {
        self.streams[id.0].unacked.is_empty()
    }

    /// Trim padding from the final packet (harness bookkeeping; the
    /// application-level framing is outside the measured layer).
    pub(crate) fn stream_epilogue(&mut self, id: StreamId, pushed_words: usize) {
        let st = &mut self.streams[id.0];
        st.total_pushed_words += pushed_words;
        st.delivered.truncate(st.total_pushed_words);
    }

    /// Inject one sequenced, source-buffered data packet. Returns
    /// `false` on backpressure.
    pub(crate) fn stream_inject(&mut self, id: StreamId, seq: u64, payload: &[u32]) -> bool {
        let (srcn, dstn) = (self.streams[id.0].src, self.streams[id.0].dst);
        let node = self.node_mut(srcn);

        // In-order delivery: generate the sequence number (the channel
        // sequence state lives in memory).
        node.cpu.clone().with_feature(Feature::InOrder, |cpu| {
            cpu.reg(Fine::RegOp, stream_src::SEQ_REG);
            cpu.mem_load(1);
            cpu.mem_store(2);
        });
        // Fault tolerance: keep a copy for retransmission.
        node.cpu.clone().with_feature(Feature::FaultTol, |cpu| {
            cpu.reg(Fine::RegOp, stream_src::BUF_REG);
            cpu.mem_store((payload.len() / 2) as u64);
        });
        // Base: the single-packet send itself.
        if !send_stream_packet(node, dstn, Tags::STREAM_DATA, seq, payload) {
            return false;
        }

        let st = &mut self.streams[id.0];
        st.unacked.insert(seq, payload.to_vec());
        st.next_seq = st.next_seq.max(seq + 1);
        true
    }

    /// Receive and process one stream packet at the destination, if one
    /// is pending. Returns `true` if a packet was consumed. Owed
    /// acknowledgements are queued on `acks` as `(value, cumulative)`
    /// pairs rather than injected inline, so the caller can retry them
    /// under backpressure without re-draining.
    pub(crate) fn stream_drain_one(
        &mut self,
        id: StreamId,
        n: usize,
        outcome: &mut StreamOutcome,
        acks: &mut VecDeque<(u64, bool)>,
    ) -> bool {
        let dstn = self.streams[id.0].dst;
        let srcn = self.streams[id.0].src;
        // Harness-level emptiness/identification check (cost-free): the
        // paper's counts take "execution paths which minimize the
        // instruction count", i.e. the poll that would discover an empty
        // FIFO is not charged to the protocol, and packets belonging to
        // other in-flight operations are left for their owners.
        let Some(meta) = self.rx_peek_at(dstn) else {
            return false;
        };
        if meta.src != srcn || meta.tag != Tags::STREAM_DATA {
            return false;
        }
        let node = self.node_mut(dstn);

        let Some((_, tag)) = node.ni.latch_rx() else {
            return false;
        };
        debug_assert_eq!(tag, Tags::STREAM_DATA);
        node.cpu.reg(Fine::Handler, stream_dst::PER_PACKET_REG);
        let seq = u64::from(node.ni.read_header());
        let mut payload = Vec::with_capacity(n);
        for _ in 0..(n / 2) {
            let (w0, w1) = node.ni.read_payload2();
            payload.push(w0);
            payload.push(w1);
        }

        let cpu = node.cpu.clone();
        let expected = self.streams[id.0].expected;
        if seq == expected {
            // In sequence: the cheap path — compare, deliver, bump.
            cpu.with_feature(Feature::InOrder, |cpu| {
                cpu.reg(Fine::RegOp, stream_dst::INSEQ_REG);
            });
            let st = &mut self.streams[id.0];
            st.delivered.extend_from_slice(&payload);
            st.expected += 1;
            // Drain any buffered successors now in sequence.
            loop {
                let next = self.streams[id.0].expected;
                let Some(buffered) = self.streams[id.0].ooo.remove(&next) else {
                    break;
                };
                let node = self.node_mut(dstn);
                node.cpu.clone().with_feature(Feature::InOrder, |cpu| {
                    cpu.reg(Fine::RegOp, stream_dst::OOO_DRAIN_REG);
                    cpu.mem_load((n + 1) as u64); // word-granularity copy-out
                    cpu.mem_load(stream_dst::OOO_UNLINK_MEM);
                });
                let st = &mut self.streams[id.0];
                st.delivered.extend_from_slice(&buffered);
                st.expected += 1;
            }
        } else if seq > expected {
            // Out of order: buffer it (the expensive path).
            outcome.out_of_order += 1;
            cpu.with_feature(Feature::InOrder, |cpu| {
                cpu.reg(Fine::RegOp, stream_dst::OOO_BUFFER_REG);
                cpu.mem_store((n + 1) as u64); // word-granularity copy-in
                cpu.mem_store(stream_dst::OOO_INSERT_MEM);
            });
            self.streams[id.0].ooo.insert(seq, payload);
        } else {
            // Duplicate (a retransmission of something already seen):
            // discard, and re-acknowledge in case the ack was lost.
            outcome.duplicates += 1;
            cpu.with_feature(Feature::InOrder, |cpu| {
                cpu.reg(Fine::RegOp, stream_dst::INSEQ_REG + stream_dst::DUP_EXTRA_REG);
            });
            acks.push_back((seq, false));
            return true;
        }

        // Acknowledgement policy.
        let st = &mut self.streams[id.0];
        st.arrived_contig = contiguous_arrived(st);
        st.arrivals_since_ack += 1;
        let period = st.cfg.ack_period.max(1);
        let due = st.arrivals_since_ack >= period;
        if period == 1 {
            acks.push_back((seq, false));
            self.streams[id.0].arrivals_since_ack = 0;
        } else if due {
            // Group (cumulative) acknowledgement: everything below the
            // contiguous-arrival mark is covered.
            let cum = self.streams[id.0].arrived_contig;
            acks.push_back((cum, true));
            self.streams[id.0].arrivals_since_ack = 0;
        }
        true
    }

    /// One attempt at injecting a (possibly cumulative) acknowledgement
    /// from the stream's receiver back to its source. Returns `false` on
    /// backpressure; the caller requeues and retries.
    pub(crate) fn stream_try_send_ack(&mut self, id: StreamId, value: u64, cumulative: bool) -> bool {
        let (srcn, dstn) = (self.streams[id.0].src, self.streams[id.0].dst);
        let node = self.node_mut(dstn);
        let cpu = node.cpu.clone();
        let flags = if cumulative { [1, 0, 0, 0] } else { [0, 0, 0, 0] };
        cpu.with_feature(Feature::FaultTol, |_| {
            node.send_ctl(srcn, Tags::STREAM_ACK, value as u32, flags)
        })
    }

    /// Receive one acknowledgement at the source, if pending, releasing
    /// the covered source-buffer slot(s).
    pub(crate) fn stream_take_ack(&mut self, id: StreamId, outcome: &mut StreamOutcome) -> bool {
        let srcn = self.streams[id.0].src;
        let dstn = self.streams[id.0].dst;
        // Cost-free emptiness/identification check, as in the drain
        // path: the status poll is charged per processed acknowledgement
        // (part of its 18 reg + 5 dev budget), not for discovering an
        // idle FIFO.
        let Some(meta) = self.rx_peek_at(srcn) else {
            return false;
        };
        if meta.src != dstn || meta.tag != Tags::STREAM_ACK {
            return false;
        }
        let node = self.node_mut(srcn);
        let cpu = node.cpu.clone();
        let taken = cpu.with_feature(Feature::FaultTol, |cpu| {
            if !node.ni.poll_status() {
                return None;
            }
            let (_, tag) = node.ni.latch_rx()?;
            debug_assert_eq!(tag, Tags::STREAM_ACK);
            cpu.reg(Fine::RegOp, stream_src::ACK_RECV_REG);
            let header = node.ni.read_header();
            let (w0, _) = node.ni.read_payload2();
            let _ = node.ni.read_payload2();
            Some((u64::from(header), w0 == 1))
        });
        let Some((seq, cumulative)) = taken else {
            return false;
        };
        let st = &mut self.streams[id.0];
        if cumulative {
            st.unacked.retain(|&s, _| s >= seq);
        } else {
            st.unacked.remove(&seq);
        }
        outcome.acks += 1;
        true
    }
}

/// Send one stream data packet (the control-send shape generalized to
/// `n` payload words: 14 reg + 1 mem + (n/2 + 3) dev).
fn send_stream_packet(
    node: &mut crate::machine::Node,
    dst: NodeId,
    tag: u8,
    seq: u64,
    payload: &[u32],
) -> bool {
    node.cpu.call(ctl_send::CALL);
    node.cpu.reg(Fine::NiSetup, ctl_send::SETUP_REG);
    node.cpu.mem_load(ctl_send::STATE_MEM);
    node.ni.stage_envelope(dst, tag, seq as u32);
    for pair in payload.chunks(2) {
        node.ni.push_payload2(pair[0], pair.get(1).copied().unwrap_or(0));
    }
    node.cpu.reg(Fine::CheckStatus, ctl_send::STATUS_REG);
    node.cpu.ctrl(ctl_send::CTRL);
    node.ni.commit_send() && {
        node.ni.load_send_status();
        true
    }
}

fn contiguous_arrived(st: &StreamState) -> u64 {
    let mut mark = st.expected;
    // Packets buffered out of order extend the contiguous-arrival mark
    // only if they are consecutive from `expected`.
    for (&s, _) in st.ooo.iter() {
        if s == mark {
            mark += 1;
        } else if s > mark {
            break;
        }
    }
    mark
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::CmamConfig;
    use timego_cost::analytic::{cmam_indefinite, IndefiniteOpts, MsgShape};
    use timego_cost::{Endpoint, Feature};
    use timego_netsim::{DeliveryScript, ScriptedNetwork};
    use timego_ni::share;

    fn n(i: usize) -> NodeId {
        NodeId::new(i)
    }

    fn machine(script: DeliveryScript) -> Machine {
        Machine::new(
            share(ScriptedNetwork::new(2, script)),
            2,
            CmamConfig::default(),
        )
    }

    #[test]
    fn delivers_in_order_over_in_order_substrate() {
        let mut m = machine(DeliveryScript::InOrder);
        let id = m.open_stream(n(0), n(1), StreamConfig::default());
        let data: Vec<u32> = (100..164).collect();
        let out = m.stream_send(id, &data).unwrap();
        assert_eq!(out.packets, 16);
        assert_eq!(out.out_of_order, 0);
        assert_eq!(out.duplicates, 0);
        assert_eq!(m.stream_received(id), data.as_slice());
    }

    #[test]
    fn reorders_correctly_over_swapping_substrate() {
        let mut m = machine(DeliveryScript::AlternateSwap);
        let id = m.open_stream(n(0), n(1), StreamConfig::default());
        let data: Vec<u32> = (0..128).map(|i| i * 7).collect();
        let out = m.stream_send(id, &data).unwrap();
        // Exactly half the packets arrive out of order…
        assert_eq!(out.out_of_order, out.packets / 2);
        // …yet the user sees them in order.
        assert_eq!(m.stream_received(id), data.as_slice());
    }

    #[test]
    fn sequential_sends_continue_the_sequence() {
        let mut m = machine(DeliveryScript::AlternateSwap);
        let id = m.open_stream(n(0), n(1), StreamConfig::default());
        m.stream_send(id, &[1, 2, 3, 4, 5]).unwrap();
        m.stream_send(id, &[6, 7, 8]).unwrap();
        assert_eq!(m.stream_received(id), &[1, 2, 3, 4, 5, 6, 7, 8]);
    }

    #[test]
    fn empty_send_is_rejected() {
        let mut m = machine(DeliveryScript::InOrder);
        let id = m.open_stream(n(0), n(1), StreamConfig::default());
        assert!(matches!(
            m.stream_send(id, &[]),
            Err(ProtocolError::BadTransfer(_))
        ));
    }

    #[test]
    fn matches_table2_at_16_words() {
        let mut m = machine(DeliveryScript::AlternateSwap);
        let id = m.open_stream(n(0), n(1), StreamConfig::default());
        let data: Vec<u32> = (0..16).collect();
        m.reset_costs();
        m.stream_send(id, &data).unwrap();
        let src = m.cpu(n(0)).snapshot();
        let dst = m.cpu(n(1)).snapshot();
        assert_eq!(src.feature_total(Feature::Base), 80);
        assert_eq!(dst.feature_total(Feature::Base), 69);
        assert_eq!(src.feature_total(Feature::InOrder), 20);
        assert_eq!(dst.feature_total(Feature::InOrder), 116);
        assert_eq!(src.feature_total(Feature::FaultTol), 116);
        assert_eq!(dst.feature_total(Feature::FaultTol), 80);
        assert_eq!(src.total(), 216);
        assert_eq!(dst.total(), 265);
        assert_eq!(src.total() + dst.total(), 481, "Table 2 grand total");
    }

    #[test]
    fn matches_analytic_model_at_1024_words() {
        let mut m = machine(DeliveryScript::AlternateSwap);
        let id = m.open_stream(n(0), n(1), StreamConfig::default());
        let data: Vec<u32> = (0..1024).collect();
        m.reset_costs();
        m.stream_send(id, &data).unwrap();
        let shape = MsgShape::paper(1024).unwrap();
        let model = cmam_indefinite(shape, IndefiniteOpts::paper(shape));
        let src = m.cpu(n(0)).snapshot();
        let dst = m.cpu(n(1)).snapshot();
        for f in Feature::ALL {
            assert_eq!(src.feature(f), model.get(Endpoint::Source, f), "source {f}");
            assert_eq!(
                dst.feature(f),
                model.get(Endpoint::Destination, f),
                "destination {f}"
            );
        }
        assert_eq!(src.total() + dst.total(), 29965, "Table 2 grand total");
    }

    #[test]
    fn group_acks_reduce_fault_tolerance_cost() {
        let data: Vec<u32> = (0..256).collect();
        let mut per_packet = machine(DeliveryScript::AlternateSwap);
        let id1 = per_packet.open_stream(n(0), n(1), StreamConfig::default());
        per_packet.reset_costs();
        per_packet.stream_send(id1, &data).unwrap();
        let ft_per_packet = per_packet.cpu(n(0)).snapshot().feature_total(Feature::FaultTol)
            + per_packet.cpu(n(1)).snapshot().feature_total(Feature::FaultTol);

        let mut grouped = machine(DeliveryScript::AlternateSwap);
        let id2 = grouped.open_stream(
            n(0),
            n(1),
            StreamConfig { ack_period: 8, ..StreamConfig::default() },
        );
        grouped.reset_costs();
        let out = grouped.stream_send(id2, &data).unwrap();
        let ft_grouped = grouped.cpu(n(0)).snapshot().feature_total(Feature::FaultTol)
            + grouped.cpu(n(1)).snapshot().feature_total(Feature::FaultTol);

        assert!(ft_grouped < ft_per_packet / 2, "{ft_grouped} vs {ft_per_packet}");
        assert_eq!(grouped.stream_received(id2), data.as_slice());
        assert_eq!(out.acks, 8);
    }
}
