//! Measurement harness: run a protocol under the paper's controlled
//! assumptions and return its costs in Table 2/3 form.
//!
//! These helpers reproduce the paper's measurement conditions exactly:
//! two otherwise-idle nodes, an instant loss-free substrate, in-order
//! delivery for the finite-sequence protocol, and the alternate-swap
//! delivery order (exactly half the packets out of order) for the
//! indefinite-sequence protocol. Every helper also verifies that the
//! data actually arrived intact — the costs come from real executions.

use timego_cost::analytic::ProtocolCost;
use timego_cost::{CostVector, Endpoint, Feature};
use timego_netsim::{DeliveryScript, NodeId, ScriptedNetwork};
use timego_ni::share;

use crate::machine::{CmamConfig, Machine};
use crate::stream::{StreamConfig, StreamOutcome};
use crate::xfer::XferOutcome;

/// Assemble a [`ProtocolCost`] table from the two endpoints' recorded
/// cost vectors.
pub(crate) fn to_protocol_cost(src: &CostVector, dst: &CostVector) -> ProtocolCost {
    let mut c = ProtocolCost::new();
    for f in Feature::ALL {
        c.set(Endpoint::Source, f, src.feature(f));
        c.set(Endpoint::Destination, f, dst.feature(f));
    }
    c
}

fn fresh_machine(script: DeliveryScript, packet_words: usize) -> Machine {
    Machine::new(
        share(ScriptedNetwork::new(2, script)),
        2,
        CmamConfig {
            packet_words,
            ..CmamConfig::default()
        },
    )
}

fn pattern(words: usize) -> Vec<u32> {
    (0..words as u32).map(|i| i.wrapping_mul(0x9E37_79B9) ^ 0x5bd1) .collect()
}

/// Measure single-packet delivery (Table 1): one `CMAM_4` active
/// message between two nodes.
///
/// # Panics
///
/// Panics if the protocol misbehaves (it cannot on the instant
/// substrate).
pub fn measure_single_packet() -> ProtocolCost {
    let mut m = fresh_machine(DeliveryScript::InOrder, 4);
    m.reset_costs();
    m.am4_send(NodeId::new(0), NodeId::new(1), crate::machine::Tags::USER_BASE, [1, 2, 3, 4])
        .expect("instant substrate accepts");
    // No handler registered: the poll pays exactly the 27-instruction
    // reception path and hands the message back.
    let out = m.poll(NodeId::new(1));
    assert!(out.received(), "message must be waiting");
    to_protocol_cost(&m.cpu(NodeId::new(0)).snapshot(), &m.cpu(NodeId::new(1)).snapshot())
}

/// Measure the CMAM finite-sequence protocol for a `words`-word message
/// with `packet_words`-word packets, verifying delivery.
///
/// # Panics
///
/// Panics if the transfer fails or delivers wrong data.
pub fn measure_xfer(words: usize, packet_words: usize) -> (ProtocolCost, XferOutcome) {
    let mut m = fresh_machine(DeliveryScript::InOrder, packet_words);
    let data = pattern(words);
    m.reset_costs();
    let outcome = m.xfer(NodeId::new(0), NodeId::new(1), &data).expect("transfer completes");
    assert_eq!(
        m.read_buffer(NodeId::new(1), outcome.dst_buffer, words),
        data,
        "transferred data must match"
    );
    (
        to_protocol_cost(&m.cpu(NodeId::new(0)).snapshot(), &m.cpu(NodeId::new(1)).snapshot()),
        outcome,
    )
}

/// Measure the CMAM indefinite-sequence protocol under the paper's
/// assumptions (half the packets out of order) with acknowledgements
/// every `ack_period` packets (1 = the paper's per-packet default).
///
/// # Panics
///
/// Panics if the stream fails or delivers wrong data.
pub fn measure_stream(words: usize, packet_words: usize, ack_period: u64) -> (ProtocolCost, StreamOutcome) {
    let mut m = fresh_machine(DeliveryScript::AlternateSwap, packet_words);
    let data = pattern(words);
    let id = m.open_stream(
        NodeId::new(0),
        NodeId::new(1),
        StreamConfig {
            ack_period,
            ..StreamConfig::default()
        },
    );
    m.reset_costs();
    let outcome = m.stream_send(id, &data).expect("stream completes");
    assert_eq!(m.stream_received(id), data, "streamed data must arrive in order");
    (
        to_protocol_cost(&m.cpu(NodeId::new(0)).snapshot(), &m.cpu(NodeId::new(1)).snapshot()),
        outcome,
    )
}

/// Measure the finite-sequence protocol on a high-level network
/// (Figure 5 / Figure 6 left).
///
/// # Panics
///
/// Panics if the transfer fails or delivers wrong data.
pub fn measure_hl_xfer(words: usize, packet_words: usize) -> (ProtocolCost, XferOutcome) {
    let mut m = fresh_machine(DeliveryScript::InOrder, packet_words);
    let data = pattern(words);
    m.reset_costs();
    let outcome = m.hl_xfer(NodeId::new(0), NodeId::new(1), &data).expect("transfer completes");
    assert_eq!(
        m.read_buffer(NodeId::new(1), outcome.dst_buffer, words),
        data,
        "transferred data must match"
    );
    (
        to_protocol_cost(&m.cpu(NodeId::new(0)).snapshot(), &m.cpu(NodeId::new(1)).snapshot()),
        outcome,
    )
}

/// Measure the indefinite-sequence protocol on a high-level network
/// (Figure 7 / Figure 6 right).
///
/// # Panics
///
/// Panics if the stream fails or delivers wrong data.
pub fn measure_hl_stream(words: usize, packet_words: usize) -> ProtocolCost {
    let mut m = fresh_machine(DeliveryScript::InOrder, packet_words);
    let data = pattern(words);
    m.reset_costs();
    let got = m
        .hl_stream_send(NodeId::new(0), NodeId::new(1), &data)
        .expect("stream completes");
    assert_eq!(got, data, "streamed data must arrive in order");
    to_protocol_cost(&m.cpu(NodeId::new(0)).snapshot(), &m.cpu(NodeId::new(1)).snapshot())
}

#[cfg(test)]
mod tests {
    use super::*;
    use timego_cost::analytic::{self, IndefiniteOpts, MsgShape};

    #[test]
    fn single_packet_measurement_matches_model() {
        assert_eq!(measure_single_packet(), analytic::single_packet());
    }

    #[test]
    fn xfer_measurement_matches_model_across_sizes() {
        for words in [16u64, 64, 256, 1024] {
            let (measured, _) = measure_xfer(words as usize, 4);
            let model = analytic::cmam_finite(MsgShape::paper(words).unwrap());
            assert_eq!(measured, model, "xfer mismatch at {words} words");
        }
    }

    #[test]
    fn xfer_measurement_matches_model_across_packet_sizes() {
        for n in [4u64, 8, 16, 32] {
            let (measured, _) = measure_xfer(1024, n as usize);
            let model = analytic::cmam_finite(MsgShape::for_message(1024, n).unwrap());
            assert_eq!(measured, model, "xfer mismatch at n={n}");
        }
    }

    #[test]
    fn stream_measurement_matches_model_across_sizes() {
        for words in [16u64, 64, 256, 1024] {
            let (measured, out) = measure_stream(words as usize, 4, 1);
            let shape = MsgShape::paper(words).unwrap();
            let model = analytic::cmam_indefinite(shape, IndefiniteOpts::paper(shape));
            assert_eq!(measured, model, "stream mismatch at {words} words");
            assert_eq!(out.out_of_order, shape.packets() / 2);
        }
    }

    #[test]
    fn stream_measurement_matches_model_across_packet_sizes() {
        for n in [4u64, 8, 16, 32] {
            let (measured, _) = measure_stream(1024, n as usize, 1);
            let shape = MsgShape::for_message(1024, n).unwrap();
            let model = analytic::cmam_indefinite(shape, IndefiniteOpts::paper(shape));
            assert_eq!(measured, model, "stream mismatch at n={n}");
        }
    }

    #[test]
    fn hl_measurements_match_models() {
        for words in [16u64, 1024] {
            let (fin, _) = measure_hl_xfer(words as usize, 4);
            assert_eq!(fin, analytic::hl_finite(MsgShape::paper(words).unwrap()));
            let ind = measure_hl_stream(words as usize, 4);
            assert_eq!(ind, analytic::hl_indefinite(MsgShape::paper(words).unwrap()));
        }
    }
}
