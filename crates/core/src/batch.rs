//! Segment reuse: amortizing the preallocation handshake.
//!
//! Table 2 shows buffer management costing 148 instructions per
//! transfer — half the total for a 16-word message. A natural protocol
//! optimization (implicit in the paper's discussion of where the
//! handshake hurts) is to keep the communication segment alive across a
//! *batch* of transfers to the same destination: one request/reply
//! handshake and one disassociation serve `k` messages, each of which
//! still pays its own data movement, offsets, and end-to-end
//! acknowledgement.

use timego_cost::{Feature, Fine};
use timego_netsim::NodeId;

use crate::costs::{segment, xfer_order, xfer_recv, xfer_send};
use crate::error::ProtocolError;
use crate::machine::{Machine, Tags};
use crate::xfer::{send_ctl_retrying, XferOutcome, XferRx};

impl Machine {
    /// Transfer every message in `messages` from `src` to `dst` through
    /// a single communication segment: the buffer-management handshake
    /// and the segment disassociation are paid once for the whole
    /// batch; each message still pays base data movement, in-order
    /// offsets and its completion acknowledgement.
    ///
    /// Returns one [`XferOutcome`] per message; the destination buffers
    /// are consecutive sub-ranges of the shared segment.
    ///
    /// # Errors
    ///
    /// [`ProtocolError::BadTransfer`] if the batch or any message is
    /// empty; otherwise as [`Machine::xfer`].
    ///
    /// # Panics
    ///
    /// Panics if `src` or `dst` is out of range or `src == dst`.
    pub fn xfer_batch(
        &mut self,
        src: NodeId,
        dst: NodeId,
        messages: &[&[u32]],
    ) -> Result<Vec<XferOutcome>, ProtocolError> {
        assert_ne!(src, dst, "transfer endpoints must differ");
        if messages.is_empty() {
            return Err(ProtocolError::BadTransfer("empty batch".into()));
        }
        if messages.iter().any(|m| m.is_empty()) {
            return Err(ProtocolError::BadTransfer("empty message in batch".into()));
        }
        let n = self.cfg.packet_words;
        let max_wait = self.cfg.max_wait_cycles;
        // Segment words: each message occupies a whole number of
        // packets so padded final packets stay in bounds.
        let spans: Vec<usize> = messages.iter().map(|m| m.len().div_ceil(n) * n).collect();
        let total_words: usize = spans.iter().sum();

        // One handshake for the whole batch.
        let (segment_id, segment) = self.xfer_handshake(src, dst, total_words)?;

        let mut outcomes = Vec::with_capacity(messages.len());
        let mut seg_offset = 0usize;
        for (data, span) in messages.iter().zip(&spans) {
            let packets = (data.len() as u64).div_ceil(n as u64);
            let src_buf = self.write_buffer(src, data);
            let mut rx = XferRx {
                buffer: segment,
                packets_expected: packets,
                packets_received: 0,
            };
            let mut send_retries = 0;

            // Per-message prologue/entry, exactly as in a lone transfer.
            {
                let node = self.node_mut(src);
                node.cpu.reg(Fine::CallReturn, xfer_send::PROLOGUE_REG);
                node.cpu.mem_load(xfer_send::PROLOGUE_MEM);
            }
            {
                let node = self.node_mut(dst);
                node.cpu.call(xfer_recv::ENTRY_CALL);
                node.cpu.ctrl(xfer_recv::ENTRY_CTRL);
                node.cpu.handler(xfer_recv::ENTRY_HANDLER);
                node.cpu.mem_load(xfer_recv::ENTRY_STATE_MEM);
                let _ = self.nodes[dst.index()].ni.poll_status();
            }

            for k in 0..packets {
                // Offsets are absolute within the shared segment but the
                // source buffer is per message.
                let msg_offset = k * n as u64;
                let mut waited = 0;
                loop {
                    let accepted = self.send_batch_packet(
                        src,
                        dst,
                        src_buf,
                        msg_offset,
                        seg_offset as u64 + msg_offset,
                        n,
                    );
                    if accepted {
                        break;
                    }
                    send_retries += 1;
                    self.drain_data_packets(dst, n, &mut rx);
                    self.advance(1);
                    waited += 1;
                    if waited > max_wait {
                        return Err(ProtocolError::timeout("batched xfer data injection", waited));
                    }
                }
            }

            let mut waited = 0;
            while rx.packets_received < rx.packets_expected {
                let before = rx.packets_received;
                self.drain_data_packets(dst, n, &mut rx);
                if rx.packets_received == before {
                    self.advance(1);
                    waited += 1;
                    if waited > max_wait {
                        return Err(ProtocolError::timeout("batched xfer data packets", waited));
                    }
                }
            }

            // Per-message epilogue: final count check + state writeback
            // + end-to-end acknowledgement. No disassociation yet.
            {
                let node = self.node_mut(dst);
                node.cpu.clone().with_feature(Feature::InOrder, |cpu| {
                    cpu.reg(Fine::RegOp, xfer_order::DST_FINAL);
                });
                node.cpu.mem_store(xfer_recv::EXIT_STATE_MEM);
                node.cpu.clone().with_feature(Feature::FaultTol, |_| {
                    send_ctl_retrying(node, src, Tags::XFER_ACK, segment_id, [0; 4], max_wait)
                })?;
            }
            {
                let node = self.node_mut(src);
                node.cpu.clone().with_feature(Feature::FaultTol, |_| -> Result<_, ProtocolError> {
                    node.wait_rx(max_wait, "batched xfer acknowledgement")?;
                    let (_, tag, _, _) = node.recv_ctl().expect("wait_rx saw a packet");
                    if tag != Tags::XFER_ACK {
                        return Err(ProtocolError::UnexpectedPacket { tag });
                    }
                    Ok(())
                })?;
            }

            outcomes.push(XferOutcome {
                dst_buffer: segment.offset(seg_offset),
                packets,
                segment_id,
                send_retries,
            });
            seg_offset += span;
        }

        // One disassociation for the whole batch (buffer management).
        {
            let node = self.node_mut(dst);
            node.cpu.clone().with_feature(Feature::BufferMgmt, |cpu| {
                cpu.reg(Fine::RegOp, segment::DISASSOCIATE_REG);
                cpu.mem_store(segment::DISASSOCIATE_MEM);
            });
        }

        Ok(outcomes)
    }

    /// A data-packet send whose header offset (into the shared segment)
    /// differs from its source-buffer offset.
    fn send_batch_packet(
        &mut self,
        src: NodeId,
        dst: NodeId,
        buf: timego_ni::Addr,
        msg_offset: u64,
        seg_offset: u64,
        n: usize,
    ) -> bool {
        let node = self.node_mut(src);
        node.cpu.clone().with_feature(Feature::InOrder, |cpu| {
            cpu.reg(Fine::RegOp, xfer_order::SRC_PER_PACKET);
        });
        node.cpu.ctrl(xfer_send::LOOP_CTRL);
        node.cpu.reg(Fine::RegOp, xfer_send::PTR_ADVANCE);
        node.cpu.reg(Fine::NiSetup, xfer_send::SETUP_REG);
        node.ni.stage_envelope(dst, Tags::XFER_DATA, seg_offset as u32);
        for d in 0..(n / 2) {
            let (w0, w1) = node.mem.load2(buf.offset(msg_offset as usize + 2 * d));
            node.ni.push_payload2(w0, w1);
        }
        node.cpu.reg(Fine::CheckStatus, xfer_send::STATUS_REG);
        node.ni.commit_send() && {
            node.ni.load_send_status();
            true
        }
    }

}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::CmamConfig;
    use timego_cost::Feature;
    use timego_netsim::{DeliveryScript, ScriptedNetwork};
    use timego_ni::share;

    fn n(i: usize) -> NodeId {
        NodeId::new(i)
    }

    fn machine() -> Machine {
        Machine::new(
            share(ScriptedNetwork::new(2, DeliveryScript::InOrder)),
            2,
            CmamConfig::default(),
        )
    }

    #[test]
    fn batch_transfers_every_message_intact() {
        let mut m = machine();
        let a: Vec<u32> = (0..16).collect();
        let b: Vec<u32> = (100..150).collect();
        let c: Vec<u32> = (7..20).collect();
        let outs = m.xfer_batch(n(0), n(1), &[&a, &b, &c]).unwrap();
        assert_eq!(outs.len(), 3);
        assert_eq!(m.read_buffer(n(1), outs[0].dst_buffer, a.len()), a);
        assert_eq!(m.read_buffer(n(1), outs[1].dst_buffer, b.len()), b);
        assert_eq!(m.read_buffer(n(1), outs[2].dst_buffer, c.len()), c);
        assert!(outs.iter().all(|o| o.segment_id == outs[0].segment_id));
    }

    #[test]
    fn batching_amortizes_buffer_management_exactly() {
        const K: usize = 8;
        let msg: Vec<u32> = (0..16).collect();

        // K separate transfers.
        let mut separate = machine();
        separate.reset_costs();
        for _ in 0..K {
            separate.xfer(n(0), n(1), &msg).unwrap();
        }
        let sep_total = separate.cpu(n(0)).snapshot().total() + separate.cpu(n(1)).snapshot().total();
        let sep_bm = separate.cpu(n(0)).snapshot().feature_total(Feature::BufferMgmt)
            + separate.cpu(n(1)).snapshot().feature_total(Feature::BufferMgmt);

        // One batch of K.
        let mut batched = machine();
        batched.reset_costs();
        let messages: Vec<&[u32]> = (0..K).map(|_| msg.as_slice()).collect();
        batched.xfer_batch(n(0), n(1), &messages).unwrap();
        let bat_total = batched.cpu(n(0)).snapshot().total() + batched.cpu(n(1)).snapshot().total();
        let bat_bm = batched.cpu(n(0)).snapshot().feature_total(Feature::BufferMgmt)
            + batched.cpu(n(1)).snapshot().feature_total(Feature::BufferMgmt);

        // Buffer management: K × 148 vs one 148.
        assert_eq!(sep_bm, (K as u64) * 148);
        assert_eq!(bat_bm, 148);
        // Everything else is identical, so the whole saving is (K-1)×148.
        assert_eq!(sep_total - bat_total, (K as u64 - 1) * 148);
    }

    #[test]
    fn empty_batch_and_empty_message_are_rejected() {
        let mut m = machine();
        assert!(matches!(
            m.xfer_batch(n(0), n(1), &[]),
            Err(ProtocolError::BadTransfer(_))
        ));
        let a: Vec<u32> = vec![1];
        assert!(matches!(
            m.xfer_batch(n(0), n(1), &[&a, &[]]),
            Err(ProtocolError::BadTransfer(_))
        ));
    }

    #[test]
    fn batch_of_one_costs_one_transfer() {
        let msg: Vec<u32> = (0..64).collect();
        let mut single = machine();
        single.reset_costs();
        single.xfer(n(0), n(1), &msg).unwrap();
        let single_total = single.cpu(n(0)).snapshot().total() + single.cpu(n(1)).snapshot().total();

        let mut batch = machine();
        batch.reset_costs();
        batch.xfer_batch(n(0), n(1), &[&msg]).unwrap();
        let batch_total = batch.cpu(n(0)).snapshot().total() + batch.cpu(n(1)).snapshot().total();
        assert_eq!(single_total, batch_total);
    }
}
