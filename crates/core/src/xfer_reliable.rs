//! Fault-tolerant finite-sequence transfer (`xfer_reliable`).
//!
//! The paper's `CMAM_xfer` *detects* faults (the end-to-end
//! acknowledgement of step 6) but cannot recover: a dropped data packet
//! starves the receiver and the transfer fails. This module extends the
//! protocol with end-to-end recovery driven by a [`RetryPolicy`]:
//!
//! * **handshake retry** — a lost allocation request or reply is
//!   retransmitted after a backoff window; the receiver answers a
//!   duplicated request from its segment table instead of allocating
//!   twice;
//! * **selective retransmission** — when the receiver's drain stalls, it
//!   scans its receive bitmap and sends an `XFER_NACK` naming the first
//!   missing packet plus a 128-bit missing-set bitmap; the source
//!   retransmits exactly those packets;
//! * **acknowledgement probing** — if the final acknowledgement is lost,
//!   the source sends an `XFER_PROBE` and the receiver re-acknowledges
//!   from protocol state.
//!
//! Every recovery instruction — stray discards, duplicate detection, gap
//! scans, NACK/PROBE traffic, retransmitted packets — is charged to
//! `Feature::FaultTol` through the `costs::recovery` taxonomy. On a
//! fault-free run none of those paths execute, and the per-feature
//! instruction counts are **identical** to [`Machine::xfer`]'s (pinned
//! by `clean_run_costs_exactly_match_xfer` below): reliability costs
//! nothing until a fault actually happens.
//!
//! Data-packet headers carry a 12-bit per-transfer nonce above the
//! 20-bit buffer offset, derived from the per-ordered-pair **session
//! epoch** ([`Machine::next_session_epoch`]) the handshake packets also
//! carry: a delayed duplicate from an *earlier* same-pair transfer is
//! recognized as stale at either endpoint and discarded as fault-
//! tolerance work rather than corrupting (or wedging) the current
//! session.
//!
//! Above single-session recovery sits [`Machine::xfer_reliable_recovering`]:
//! when a peer crash-restart kills a session mid-flight (retryable
//! [`ProtocolError::SessionReset`] / deadline errors), it re-executes
//! the whole transfer under a fresh epoch until the policy's attempt
//! budget runs out, converging to exactly-once byte-exact delivery.

use timego_cost::{Feature, Fine};
use timego_netsim::NodeId;

use crate::costs::{recovery, xfer_order, xfer_recv};
use crate::engine::{Engine, OpOutcome};
use crate::error::ProtocolError;
use crate::machine::{Machine, Tags};
use crate::retry::{RecoveryPolicy, RetryPolicy};
use crate::xfer::{XferOutcome, XferRx};

/// Offset bits in a reliable data-packet header; the bits above hold the
/// transfer nonce.
pub(crate) const OFFSET_BITS: u32 = 20;
pub(crate) const OFFSET_MASK: u32 = (1 << OFFSET_BITS) - 1;

/// Result of a completed fault-tolerant transfer: the underlying
/// [`XferOutcome`] plus recovery statistics (all zero on a clean run).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReliableOutcome {
    /// The plain transfer outcome (buffer, packets, segment, injection
    /// backpressure retries).
    pub xfer: XferOutcome,
    /// Handshake rounds that needed a retransmitted request.
    pub handshake_retries: u32,
    /// Data packets retransmitted after a NACK.
    pub data_retransmits: u64,
    /// NACK rounds the receiver initiated.
    pub nack_rounds: u32,
    /// Acknowledgement probes the source sent.
    pub ack_probes: u32,
}

impl Machine {
    /// Run a fault-tolerant finite-sequence transfer of `data` from
    /// `src` memory to a freshly allocated segment on `dst`.
    ///
    /// Behaves like [`Machine::xfer`] on a clean network (identical
    /// per-feature instruction counts); on a lossy network it recovers
    /// from dropped, duplicated, reordered, and outage-suppressed
    /// packets within `policy`'s attempt bounds. Recovery costs are
    /// charged to `Feature::FaultTol`.
    ///
    /// # Errors
    ///
    /// [`ProtocolError::BadTransfer`] for empty data or data too large
    /// for the 20-bit offset encoding; [`ProtocolError::Timeout`] (with
    /// node and attempt context) when a phase exhausts its retry budget.
    ///
    /// # Panics
    ///
    /// Panics if `src` or `dst` is out of range, `src == dst`, or the
    /// policy allows zero attempts.
    pub fn xfer_reliable(
        &mut self,
        src: NodeId,
        dst: NodeId,
        data: &[u32],
        policy: &RetryPolicy,
    ) -> Result<ReliableOutcome, ProtocolError> {
        let mut eng = Engine::new();
        let op = eng.submit_xfer_reliable(self, src, dst, data, policy)?;
        eng.run(self);
        match eng.take_outcome(op).expect("op completed") {
            Ok(OpOutcome::Reliable(out)) => Ok(out),
            Err(e) => Err(e),
            Ok(_) => unreachable!("reliable op yields a reliable outcome"),
        }
    }

    /// [`Machine::xfer_reliable`] hardened against node crash-restarts:
    /// when an attempt dies with a *retryable* error (a peer crashed
    /// mid-session, a deadline or watchdog fired, a phase timed out),
    /// the transfer is re-executed from scratch under a fresh session
    /// epoch after the policy's backoff window, up to
    /// `policy.max_attempts` total executions. The re-execution happens
    /// *inside* the protocol engine (an engine-native
    /// [`RecoveryPolicy`], no caller-side loop): the op parks for the
    /// backoff window and re-runs under the same [`crate::OpId`].
    /// Packets of the dead session are recognizably stale under the new
    /// epoch and get discarded, so convergence is exactly-once and
    /// byte-exact.
    ///
    /// Each re-execution charges the session re-establishment costs
    /// (`SESSION_RESTART_REG`/`SESSION_RESTART_MEM`) to
    /// [`Feature::FaultTol`] at the source; a clean first attempt
    /// charges nothing beyond [`Machine::xfer_reliable`] itself.
    ///
    /// Returns the outcome plus the number of re-executions (zero when
    /// the first attempt succeeded).
    ///
    /// # Errors
    ///
    /// [`ProtocolError::BadTransfer`] as [`Machine::xfer_reliable`];
    /// otherwise the last attempt's error once the retry budget is
    /// exhausted (non-retryable errors propagate immediately).
    ///
    /// # Panics
    ///
    /// Panics if `src` or `dst` is out of range, `src == dst`, or the
    /// policy allows zero attempts.
    pub fn xfer_reliable_recovering(
        &mut self,
        src: NodeId,
        dst: NodeId,
        data: &[u32],
        policy: &RetryPolicy,
    ) -> Result<(ReliableOutcome, u32), ProtocolError> {
        let recovery = RecoveryPolicy {
            max_executions: policy.max_attempts,
            backoff: policy.clone(),
        };
        let mut eng = Engine::new();
        let op = eng.submit_xfer_reliable_recovering(self, src, dst, data, policy, &recovery)?;
        eng.run(self);
        let re_executions = eng.recovery_executions(op);
        match eng.take_outcome(op).expect("op completed") {
            Ok(OpOutcome::Reliable(out)) => Ok((out, re_executions)),
            Err(e) => Err(e),
            Ok(_) => unreachable!("reliable op yields a reliable outcome"),
        }
    }

    /// Receive one data packet at the receiver, tolerating faults:
    /// stray tags and stale-nonce packets are discarded, duplicates are
    /// detected against the receive bitmap and dropped. The clean path
    /// (fresh in-nonce packet) is instruction-identical to
    /// [`Machine::recv_one_data_packet`]. Returns `false` (after the
    /// discovery latch) when nothing is waiting.
    pub(crate) fn recv_one_data_tolerant(
        &mut self,
        dst: NodeId,
        n: usize,
        rx: &mut XferRx,
        seen: &mut [bool],
        nonce: u32,
    ) -> bool {
        let node = self.node_mut(dst);
        let Some((_, tag)) = node.ni.latch_rx() else {
            return false;
        };
        if tag != Tags::XFER_DATA {
            node.cpu.clone().with_feature(Feature::FaultTol, |cpu| {
                cpu.reg(Fine::RegOp, recovery::STRAY_DISCARD_REG);
            });
            node.ni.drop_latched();
            return true;
        }
        // The latch and header read above/below are physical device
        // accesses spent identifying the packet; the dispatch and
        // placement costs are only paid for packets that are accepted,
        // so a discarded duplicate charges nothing outside fault
        // tolerance beyond those reads.
        let header = node.ni.read_header();
        let offset = header & OFFSET_MASK;
        let idx = offset as usize / n;
        if header & !OFFSET_MASK != nonce || idx >= seen.len() {
            // A delayed duplicate from an earlier transfer.
            node.cpu.clone().with_feature(Feature::FaultTol, |cpu| {
                cpu.reg(Fine::RegOp, recovery::STRAY_DISCARD_REG);
            });
            node.ni.drop_latched();
            return true;
        }
        if seen[idx] {
            node.cpu.clone().with_feature(Feature::FaultTol, |cpu| {
                cpu.reg(Fine::RegOp, recovery::DUP_DATA_REG);
            });
            node.ni.drop_latched();
            return true;
        }
        node.cpu.reg(Fine::Handler, xfer_recv::PER_PACKET_REG);
        node.cpu.clone().with_feature(Feature::InOrder, |cpu| {
            cpu.reg(Fine::RegOp, xfer_order::DST_PER_PACKET);
        });
        for d in 0..(n / 2) {
            let (w0, w1) = node.ni.read_payload2();
            node.mem
                .store2(rx.buffer.offset(offset as usize + 2 * d), w0, w1);
        }
        seen[idx] = true;
        rx.packets_received += 1;
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::CmamConfig;
    use timego_netsim::{
        DeliveryScript, FaultConfig, Mesh2D, ScriptedNetwork, SwitchedConfig, SwitchedNetwork,
    };
    use timego_ni::share;

    fn n(i: usize) -> NodeId {
        NodeId::new(i)
    }

    fn scripted_machine(script: DeliveryScript) -> Machine {
        Machine::new(
            share(ScriptedNetwork::new(2, script)),
            2,
            CmamConfig::default(),
        )
    }

    fn switched_machine(fault: FaultConfig, seed: u64) -> Machine {
        // Roomy queues: no injection backpressure, so runs that differ
        // only in faults stay comparable packet-for-packet.
        let net = SwitchedNetwork::new(
            Mesh2D::new(2, 1),
            SwitchedConfig {
                rx_queue_capacity: 4096,
                link_queue_capacity: 256,
                fault,
                seed,
                ..SwitchedConfig::default()
            },
        );
        Machine::new(share(net), 2, CmamConfig::default())
    }

    fn feature_totals(m: &Machine, node: NodeId) -> Vec<(Feature, u64)> {
        let snap = m.cpu(node).snapshot();
        Feature::ALL
            .into_iter()
            .map(|f| (f, snap.feature_total(f)))
            .collect()
    }

    #[test]
    fn clean_run_costs_exactly_match_xfer() {
        // The acceptance gate: with all fault probabilities zero,
        // `xfer_reliable` reports per-feature instruction counts
        // identical to `xfer` — recovery support costs nothing until a
        // fault happens.
        for script in [DeliveryScript::InOrder, DeliveryScript::AlternateSwap] {
            let data: Vec<u32> = (0..64).map(|i| i * 7 + 3).collect();
            let mut plain = scripted_machine(script);
            plain.reset_costs();
            plain.xfer(n(0), n(1), &data).unwrap();

            let mut reliable = scripted_machine(script);
            reliable.reset_costs();
            let out = reliable
                .xfer_reliable(n(0), n(1), &data, &RetryPolicy::default())
                .unwrap();
            assert_eq!(out.handshake_retries, 0);
            assert_eq!(out.data_retransmits, 0);
            assert_eq!(out.nack_rounds, 0);
            assert_eq!(out.ack_probes, 0);
            assert_eq!(out.xfer.packets, 16);

            for node in [n(0), n(1)] {
                assert_eq!(
                    feature_totals(&plain, node),
                    feature_totals(&reliable, node),
                    "{script:?} node {node:?}: clean reliable run must cost exactly what xfer costs"
                );
            }
        }
    }

    #[test]
    fn clean_switched_run_costs_exactly_match_xfer() {
        // Same gate over a real store-and-forward substrate (latency,
        // backpressure) instead of the instant scripted network.
        let data: Vec<u32> = (0..128).collect();
        let mut plain = switched_machine(FaultConfig::default(), 7);
        plain.reset_costs();
        plain.xfer(n(0), n(1), &data).unwrap();

        let mut reliable = switched_machine(FaultConfig::default(), 7);
        reliable.reset_costs();
        reliable
            .xfer_reliable(n(0), n(1), &data, &RetryPolicy::default())
            .unwrap();

        for node in [n(0), n(1)] {
            assert_eq!(
                feature_totals(&plain, node),
                feature_totals(&reliable, node),
                "clean switched run must cost exactly what xfer costs"
            );
        }
    }

    #[test]
    fn recovers_from_packet_drops() {
        let fault = FaultConfig {
            drop_prob: 0.1,
            ..FaultConfig::default()
        };
        let data: Vec<u32> = (0..256).map(|i| i ^ 0xABCD).collect();
        let mut ok = 0;
        for seed in 0..8 {
            let mut m = switched_machine(fault.clone(), seed);
            let out = m
                .xfer_reliable(n(0), n(1), &data, &RetryPolicy::default())
                .expect("reliable transfer must survive 10% drops");
            assert_eq!(
                m.read_buffer(n(1), out.xfer.dst_buffer, data.len()),
                data,
                "seed {seed}: payload must be byte-exact"
            );
            if out.data_retransmits > 0 || out.handshake_retries > 0 || out.ack_probes > 0 {
                ok += 1;
            }
        }
        assert!(ok > 0, "at least one seed must actually exercise recovery");
    }

    #[test]
    fn recovery_work_lands_in_fault_tolerance() {
        let fault = FaultConfig {
            drop_prob: 0.15,
            ..FaultConfig::default()
        };
        let data: Vec<u32> = (0..256).collect();
        // Find a seed whose run drops data packets but leaves the
        // handshake and acknowledgement clean, so the non-recovery
        // features can be compared against a fault-free baseline.
        for seed in 0..32 {
            let mut m = switched_machine(fault.clone(), seed);
            m.reset_costs();
            let out = m
                .xfer_reliable(n(0), n(1), &data, &RetryPolicy::default())
                .unwrap();
            if out.data_retransmits == 0 || out.handshake_retries > 0 || out.ack_probes > 0 {
                continue;
            }
            let mut clean = switched_machine(FaultConfig::default(), seed);
            clean.reset_costs();
            clean
                .xfer_reliable(n(0), n(1), &data, &RetryPolicy::default())
                .unwrap();
            // Base / buffer management / in-order totals are untouched
            // by recovery; the delta is all fault tolerance.
            for node in [n(0), n(1)] {
                let faulted = m.cpu(node).snapshot();
                let baseline = clean.cpu(node).snapshot();
                assert_eq!(
                    faulted.feature_total(Feature::InOrder),
                    baseline.feature_total(Feature::InOrder),
                    "in-order totals must not change under recovery"
                );
                assert_eq!(
                    faulted.feature_total(Feature::BufferMgmt),
                    baseline.feature_total(Feature::BufferMgmt),
                    "buffer management totals must not change under recovery"
                );
            }
            assert!(
                m.cpu(n(0)).snapshot().feature_total(Feature::FaultTol)
                    + m.cpu(n(1)).snapshot().feature_total(Feature::FaultTol)
                    > clean.cpu(n(0)).snapshot().feature_total(Feature::FaultTol)
                        + clean.cpu(n(1)).snapshot().feature_total(Feature::FaultTol),
                "recovery must be visible in the fault-tolerance feature"
            );
            return;
        }
        panic!("no seed exercised a data retransmission");
    }

    #[test]
    fn oversized_transfer_is_rejected() {
        let mut m = scripted_machine(DeliveryScript::InOrder);
        let data = vec![0u32; 1 << OFFSET_BITS];
        assert!(matches!(
            m.xfer_reliable(n(0), n(1), &data, &RetryPolicy::default()),
            Err(ProtocolError::BadTransfer(_))
        ));
    }
}
