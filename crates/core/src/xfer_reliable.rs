//! Fault-tolerant finite-sequence transfer (`xfer_reliable`).
//!
//! The paper's `CMAM_xfer` *detects* faults (the end-to-end
//! acknowledgement of step 6) but cannot recover: a dropped data packet
//! starves the receiver and the transfer fails. This module extends the
//! protocol with end-to-end recovery driven by a [`RetryPolicy`]:
//!
//! * **handshake retry** — a lost allocation request or reply is
//!   retransmitted after a backoff window; the receiver answers a
//!   duplicated request from its segment table instead of allocating
//!   twice;
//! * **selective retransmission** — when the receiver's drain stalls, it
//!   scans its receive bitmap and sends an `XFER_NACK` naming the first
//!   missing packet plus a 128-bit missing-set bitmap; the source
//!   retransmits exactly those packets;
//! * **acknowledgement probing** — if the final acknowledgement is lost,
//!   the source sends an `XFER_PROBE` and the receiver re-acknowledges
//!   from protocol state.
//!
//! Every recovery instruction — stray discards, duplicate detection, gap
//! scans, NACK/PROBE traffic, retransmitted packets — is charged to
//! `Feature::FaultTol` through the `costs::recovery` taxonomy. On a
//! fault-free run none of those paths execute, and the per-feature
//! instruction counts are **identical** to [`Machine::xfer`]'s (pinned
//! by `clean_run_costs_exactly_match_xfer` below): reliability costs
//! nothing until a fault actually happens.
//!
//! Data-packet headers carry a 12-bit per-transfer nonce (derived from
//! the segment id) above the 20-bit buffer offset, so a delayed
//! duplicate from an *earlier* transfer is recognized as stray rather
//! than corrupting the current segment.

use timego_cost::{Feature, Fine};
use timego_netsim::NodeId;
use timego_ni::Addr;

use crate::costs::{am4_recv, recovery, segment, xfer_order, xfer_recv, xfer_send};
use crate::error::ProtocolError;
use crate::machine::{Machine, Node, Tags};
use crate::retry::RetryPolicy;
use crate::xfer::{send_ctl_retrying, PayloadEngine, XferOutcome, XferRx};

/// Offset bits in a reliable data-packet header; the bits above hold the
/// transfer nonce.
const OFFSET_BITS: u32 = 20;
const OFFSET_MASK: u32 = (1 << OFFSET_BITS) - 1;

/// Result of a completed fault-tolerant transfer: the underlying
/// [`XferOutcome`] plus recovery statistics (all zero on a clean run).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReliableOutcome {
    /// The plain transfer outcome (buffer, packets, segment, injection
    /// backpressure retries).
    pub xfer: XferOutcome,
    /// Handshake rounds that needed a retransmitted request.
    pub handshake_retries: u32,
    /// Data packets retransmitted after a NACK.
    pub data_retransmits: u64,
    /// NACK rounds the receiver initiated.
    pub nack_rounds: u32,
    /// Acknowledgement probes the source sent.
    pub ack_probes: u32,
}

impl Machine {
    /// Run a fault-tolerant finite-sequence transfer of `data` from
    /// `src` memory to a freshly allocated segment on `dst`.
    ///
    /// Behaves like [`Machine::xfer`] on a clean network (identical
    /// per-feature instruction counts); on a lossy network it recovers
    /// from dropped, duplicated, reordered, and outage-suppressed
    /// packets within `policy`'s attempt bounds. Recovery costs are
    /// charged to `Feature::FaultTol`.
    ///
    /// # Errors
    ///
    /// [`ProtocolError::BadTransfer`] for empty data or data too large
    /// for the 20-bit offset encoding; [`ProtocolError::Timeout`] (with
    /// node and attempt context) when a phase exhausts its retry budget.
    ///
    /// # Panics
    ///
    /// Panics if `src` or `dst` is out of range, `src == dst`, or the
    /// policy allows zero attempts.
    pub fn xfer_reliable(
        &mut self,
        src: NodeId,
        dst: NodeId,
        data: &[u32],
        policy: &RetryPolicy,
    ) -> Result<ReliableOutcome, ProtocolError> {
        assert_ne!(src, dst, "transfer endpoints must differ");
        assert!(policy.max_attempts >= 1, "need at least one attempt");
        if data.is_empty() {
            return Err(ProtocolError::BadTransfer("empty transfer".into()));
        }
        if data.len() >= (1 << OFFSET_BITS) {
            return Err(ProtocolError::BadTransfer(format!(
                "reliable transfer caps at {} words, got {}",
                (1 << OFFSET_BITS) - 1,
                data.len()
            )));
        }
        let n = self.cfg.packet_words;
        let packets = (data.len() as u64).div_ceil(n as u64);
        let max_wait = self.cfg.max_wait_cycles;

        let src_buf = self.write_buffer(src, data);

        // Steps 1–3 with retry.
        let (segment_id, rx_buffer, handshake_retries) =
            self.reliable_handshake(src, dst, data.len(), policy)?;
        let nonce = (segment_id & 0xfff) << OFFSET_BITS;

        let mut rx = XferRx {
            buffer: rx_buffer,
            packets_expected: packets,
            packets_received: 0,
        };
        // Which packet indices have landed (drives duplicate discard and
        // the NACK gap scan). Harness-held; the instructions the real
        // receiver would spend probing it are charged by the
        // `recovery::*` constants at the points it is consulted.
        let mut seen = vec![false; packets as usize];
        let mut send_retries = 0;
        let mut data_retransmits = 0;
        let mut nack_rounds = 0;

        // Per-message source prologue — identical to `xfer`.
        {
            let node = self.node_mut(src);
            node.cpu.reg(Fine::CallReturn, xfer_send::PROLOGUE_REG);
            node.cpu.mem_load(xfer_send::PROLOGUE_MEM);
        }
        // Per-message destination entry — identical to `xfer`.
        {
            let node = self.node_mut(dst);
            node.cpu.call(xfer_recv::ENTRY_CALL);
            node.cpu.ctrl(xfer_recv::ENTRY_CTRL);
            node.cpu.handler(xfer_recv::ENTRY_HANDLER);
            node.cpu.mem_load(xfer_recv::ENTRY_STATE_MEM);
            let _ = self.nodes[dst.index()].ni.poll_status();
        }

        // Step 4: injection loop — identical to `xfer` except that the
        // concurrent drain tolerates faults.
        for k in 0..packets {
            let offset = k * n as u64;
            let mut waited = 0;
            loop {
                let accepted =
                    self.send_data_packet(src, dst, src_buf, offset, n, PayloadEngine::Cpu, nonce);
                if accepted {
                    break;
                }
                send_retries += 1;
                self.drain_data_tolerant(dst, n, &mut rx, &mut seen, nonce);
                self.advance(1);
                waited += 1;
                if waited > max_wait {
                    return Err(ProtocolError::Timeout {
                        waiting_for: "xfer data injection",
                        cycles: waited,
                        node: Some(src),
                        attempts: 0,
                    });
                }
            }
        }

        // Step 4 (receiver side): drain the remainder; when the drain
        // stalls for a whole backoff window, recover the gap by NACK +
        // selective retransmission.
        let mut attempt = 0;
        let mut waited = 0;
        while rx.packets_received < rx.packets_expected {
            let before = rx.packets_received;
            self.drain_data_tolerant(dst, n, &mut rx, &mut seen, nonce);
            if rx.packets_received > before {
                waited = 0;
                continue;
            }
            self.advance(1);
            waited += 1;
            if waited <= policy.backoff(attempt) {
                continue;
            }
            attempt += 1;
            if attempt >= policy.max_attempts {
                return Err(ProtocolError::Timeout {
                    waiting_for: "xfer data packets",
                    cycles: waited,
                    node: Some(dst),
                    attempts: attempt,
                });
            }
            nack_rounds += 1;
            data_retransmits +=
                self.nack_round(src, dst, src_buf, n, &mut rx, &mut seen, nonce, policy, attempt)?;
            waited = 0;
        }

        // Steps 5–6: free the segment, send the acknowledgement —
        // identical to `xfer`.
        {
            let node = self.node_mut(dst);
            node.cpu.clone().with_feature(Feature::InOrder, |cpu| {
                cpu.reg(Fine::RegOp, xfer_order::DST_FINAL);
            });
            node.cpu.mem_store(xfer_recv::EXIT_STATE_MEM);
            node.cpu.clone().with_feature(Feature::BufferMgmt, |cpu| {
                cpu.reg(Fine::RegOp, segment::DISASSOCIATE_REG);
                cpu.mem_store(segment::DISASSOCIATE_MEM);
            });
            node.cpu.clone().with_feature(Feature::FaultTol, |_| {
                send_ctl_retrying(node, src, Tags::XFER_ACK, segment_id, [0; 4], max_wait)
            })?;
        }

        // Step 6 (source side): await the acknowledgement; if it was
        // lost, probe the destination for a re-acknowledgement.
        let ack_probes = self.await_ack(src, dst, segment_id, policy)?;

        Ok(ReliableOutcome {
            xfer: XferOutcome {
                dst_buffer: rx_buffer,
                packets,
                segment_id,
                send_retries,
            },
            handshake_retries,
            data_retransmits,
            nack_rounds,
            ack_probes,
        })
    }

    /// Steps 1–3 with retry. The first attempt is instruction-identical
    /// to [`Machine::xfer_handshake`]; every recovery action (request
    /// retransmission, duplicate-request service, the retry waits) is
    /// fault tolerance.
    fn reliable_handshake(
        &mut self,
        src: NodeId,
        dst: NodeId,
        words: usize,
        policy: &RetryPolicy,
    ) -> Result<(u32, Addr, u32), ProtocolError> {
        let n = self.cfg.packet_words;
        let max_wait = self.cfg.max_wait_cycles;

        // Step 1: allocation request (identical to the plain protocol).
        {
            let node = self.node_mut(src);
            node.cpu.clone().with_feature(Feature::BufferMgmt, |_| {
                send_ctl_retrying(node, dst, Tags::XFER_REQ, words as u32, [0; 4], max_wait)
            })?;
        }

        let mut allocated: Option<(u32, Addr)> = None;
        let mut attempt = 0;
        loop {
            let window = policy.backoff(attempt);

            // Steps 2–3: destination side. The first request that lands
            // runs the plain allocation body (buffer management); any
            // later request is a duplicate, answered from the segment
            // table (fault tolerance).
            if let Some((seg, _)) = allocated {
                let node = self.node_mut(dst);
                let cpu = node.cpu.clone();
                cpu.with_feature(Feature::FaultTol, |_| -> Result<(), ProtocolError> {
                    if recv_filtered(node, Tags::XFER_REQ, window).is_some() {
                        send_ctl_retrying(node, src, Tags::XFER_REPLY, seg, [0; 4], max_wait)?;
                    }
                    Ok(())
                })?;
            } else {
                let node = self.node_mut(dst);
                let cpu = node.cpu.clone();
                allocated = cpu.with_feature(
                    Feature::BufferMgmt,
                    |_| -> Result<Option<(u32, Addr)>, ProtocolError> {
                        let Some((header, _)) = recv_filtered(node, Tags::XFER_REQ, window) else {
                            return Ok(None); // request lost; the source retries
                        };
                        let words = header as usize;
                        let buffer = node.mem.alloc(words.div_ceil(n) * n);
                        node.cpu.reg(Fine::RegOp, segment::ASSOCIATE_REG);
                        node.cpu.mem_store(segment::ASSOCIATE_MEM);
                        let seg = (buffer.0 & 0xffff) as u32 ^ 0x5e60_0000;
                        send_ctl_retrying(node, src, Tags::XFER_REPLY, seg, [0; 4], max_wait)?;
                        Ok(Some((seg, buffer)))
                    },
                )?;
            }

            // Step 3 (source side): wait for the reply — only when one
            // can be in flight (the driver sees both endpoints, so it
            // skips a wait that provably cannot succeed; a wait on the
            // favorable path is what the plain protocol pays).
            if let Some((seg, buffer)) = allocated {
                let node = self.node_mut(src);
                let cpu = node.cpu.clone();
                let feature = if attempt == 0 {
                    Feature::BufferMgmt
                } else {
                    Feature::FaultTol
                };
                let got = cpu.with_feature(feature, |_| {
                    recv_filtered(node, Tags::XFER_REPLY, window)
                });
                if let Some((header, _)) = got {
                    debug_assert_eq!(header, seg);
                    return Ok((seg, buffer, attempt));
                }
            }

            attempt += 1;
            if attempt >= policy.max_attempts {
                return Err(ProtocolError::Timeout {
                    waiting_for: "xfer reply",
                    cycles: policy.backoff(attempt - 1),
                    node: Some(src),
                    attempts: attempt,
                });
            }
            // Recovery: retransmit the request.
            let node = self.node_mut(src);
            node.cpu.clone().with_feature(Feature::FaultTol, |_| {
                send_ctl_retrying(node, dst, Tags::XFER_REQ, words as u32, [0; 4], max_wait)
            })?;
        }
    }

    /// Drain every data packet waiting at the receiver, tolerating
    /// faults: stray tags and stale-nonce packets are discarded,
    /// duplicates are detected against the receive bitmap and dropped.
    /// The clean path (fresh in-nonce packet) is instruction-identical
    /// to [`Machine::drain_data_packets`].
    #[allow(clippy::too_many_arguments)]
    fn drain_data_tolerant(
        &mut self,
        dst: NodeId,
        n: usize,
        rx: &mut XferRx,
        seen: &mut [bool],
        nonce: u32,
    ) {
        let node = self.node_mut(dst);
        while rx.packets_received < rx.packets_expected {
            let Some((_, tag)) = node.ni.latch_rx() else {
                return;
            };
            if tag != Tags::XFER_DATA {
                node.cpu.clone().with_feature(Feature::FaultTol, |cpu| {
                    cpu.reg(Fine::RegOp, recovery::STRAY_DISCARD_REG);
                });
                node.ni.drop_latched();
                continue;
            }
            // The latch and header read above/below are physical device
            // accesses spent identifying the packet; the dispatch and
            // placement costs are only paid for packets that are
            // accepted, so a discarded duplicate charges nothing outside
            // fault tolerance beyond those reads.
            let header = node.ni.read_header();
            let offset = header & OFFSET_MASK;
            let idx = offset as usize / n;
            if header & !OFFSET_MASK != nonce || idx >= seen.len() {
                // A delayed duplicate from an earlier transfer.
                node.cpu.clone().with_feature(Feature::FaultTol, |cpu| {
                    cpu.reg(Fine::RegOp, recovery::STRAY_DISCARD_REG);
                });
                node.ni.drop_latched();
                continue;
            }
            if seen[idx] {
                node.cpu.clone().with_feature(Feature::FaultTol, |cpu| {
                    cpu.reg(Fine::RegOp, recovery::DUP_DATA_REG);
                });
                node.ni.drop_latched();
                continue;
            }
            node.cpu.reg(Fine::Handler, xfer_recv::PER_PACKET_REG);
            node.cpu.clone().with_feature(Feature::InOrder, |cpu| {
                cpu.reg(Fine::RegOp, xfer_order::DST_PER_PACKET);
            });
            for d in 0..(n / 2) {
                let (w0, w1) = node.ni.read_payload2();
                node.mem
                    .store2(rx.buffer.offset(offset as usize + 2 * d), w0, w1);
            }
            seen[idx] = true;
            rx.packets_received += 1;
        }
    }

    /// One NACK round: the receiver scans its bitmap and names the
    /// missing packets; the source selectively retransmits them. All
    /// fault tolerance. Returns the number of packets retransmitted.
    #[allow(clippy::too_many_arguments)]
    fn nack_round(
        &mut self,
        src: NodeId,
        dst: NodeId,
        src_buf: Addr,
        n: usize,
        rx: &mut XferRx,
        seen: &mut [bool],
        nonce: u32,
        policy: &RetryPolicy,
        attempt: u32,
    ) -> Result<u64, ProtocolError> {
        let max_wait = self.cfg.max_wait_cycles;
        let window = policy.backoff(attempt);

        // Receiver: gap scan + NACK (header = first missing index,
        // payload = 128-bit missing bitmap relative to it).
        let first = seen
            .iter()
            .position(|&s| !s)
            .expect("drain stalled with packets missing") as u64;
        let mut bits = [0u32; 4];
        for (i, &got) in seen.iter().enumerate().skip(first as usize).take(128) {
            if !got {
                let rel = i - first as usize;
                bits[rel / 32] |= 1 << (rel % 32);
            }
        }
        {
            let node = self.node_mut(dst);
            let cpu = node.cpu.clone();
            cpu.with_feature(Feature::FaultTol, |_| -> Result<(), ProtocolError> {
                node.cpu.reg(Fine::RegOp, recovery::GAP_SCAN_REG);
                node.cpu.mem_store(recovery::NACK_STATE_MEM);
                send_ctl_retrying(node, src, Tags::XFER_NACK, first as u32, bits, max_wait)
            })?;
        }

        // Source: receive the NACK (it may itself be lost — then this
        // round recovers nothing and the receiver NACKs again) and
        // retransmit the named packets.
        let got = {
            let node = self.node_mut(src);
            let cpu = node.cpu.clone();
            cpu.with_feature(Feature::FaultTol, |_| {
                recv_filtered(node, Tags::XFER_NACK, window)
            })
        };
        let Some((first, bits)) = got else {
            return Ok(0);
        };
        let cpu = self.cpu(src);
        cpu.with_feature(Feature::FaultTol, |c| {
            c.reg(Fine::RegOp, recovery::RETRANSMIT_SETUP_REG);
        });
        let mut retransmitted = 0;
        for rel in 0..128u32 {
            if bits[rel as usize / 32] >> (rel % 32) & 1 == 0 {
                continue;
            }
            let k = u64::from(first) + u64::from(rel);
            if k >= rx.packets_expected {
                break;
            }
            let offset = k * n as u64;
            let mut waited = 0;
            loop {
                let cpu = self.cpu(src);
                let accepted = cpu.with_feature(Feature::FaultTol, |_| {
                    self.send_data_packet(src, dst, src_buf, offset, n, PayloadEngine::Cpu, nonce)
                });
                if accepted {
                    retransmitted += 1;
                    break;
                }
                self.drain_data_tolerant(dst, n, rx, seen, nonce);
                self.advance(1);
                waited += 1;
                if waited > max_wait {
                    return Err(ProtocolError::Timeout {
                        waiting_for: "xfer data injection",
                        cycles: waited,
                        node: Some(src),
                        attempts: attempt,
                    });
                }
            }
        }
        Ok(retransmitted)
    }

    /// Step 6 (source side) with recovery: wait for the acknowledgement;
    /// on a window timeout, probe the destination, which re-acknowledges
    /// from protocol state. Returns the number of probes sent.
    fn await_ack(
        &mut self,
        src: NodeId,
        dst: NodeId,
        segment_id: u32,
        policy: &RetryPolicy,
    ) -> Result<u32, ProtocolError> {
        let max_wait = self.cfg.max_wait_cycles;
        let mut attempt = 0;
        let mut ack_probes = 0;
        loop {
            let got = {
                let node = self.node_mut(src);
                let cpu = node.cpu.clone();
                cpu.with_feature(Feature::FaultTol, |_| {
                    recv_filtered(node, Tags::XFER_ACK, policy.backoff(attempt))
                })
            };
            if let Some((header, _)) = got {
                debug_assert_eq!(header, segment_id);
                return Ok(ack_probes);
            }
            attempt += 1;
            if attempt >= policy.max_attempts {
                return Err(ProtocolError::Timeout {
                    waiting_for: "xfer acknowledgement",
                    cycles: policy.backoff(attempt - 1),
                    node: Some(src),
                    attempts: attempt,
                });
            }
            // Probe; the destination re-acknowledges if it sees it.
            ack_probes += 1;
            {
                let node = self.node_mut(src);
                let cpu = node.cpu.clone();
                cpu.with_feature(Feature::FaultTol, |_| {
                    send_ctl_retrying(node, dst, Tags::XFER_PROBE, segment_id, [0; 4], max_wait)
                })?;
            }
            {
                let node = self.node_mut(dst);
                let cpu = node.cpu.clone();
                cpu.with_feature(Feature::FaultTol, |_| -> Result<(), ProtocolError> {
                    if recv_filtered(node, Tags::XFER_PROBE, policy.backoff(attempt)).is_some() {
                        send_ctl_retrying(node, src, Tags::XFER_ACK, segment_id, [0; 4], max_wait)?;
                    }
                    Ok(())
                })?;
            }
        }
    }
}

/// Wait up to `budget` idle cycles for a control packet with tag `want`,
/// discarding strays (duplicates of earlier phases, stale replies, late
/// acknowledgements) along the way; stray discards are fault tolerance.
/// On the favorable path this costs exactly a `wait_rx` + `recv_ctl`.
/// Returns the header and payload words, or `None` on timeout.
fn recv_filtered(node: &mut Node, want: u8, budget: u64) -> Option<(u32, [u32; 4])> {
    let mut waited = 0;
    loop {
        while !node.ni.poll_status() {
            if waited >= budget {
                return None;
            }
            node.ni.advance(1);
            waited += 1;
        }
        node.cpu.call(am4_recv::CALL);
        node.cpu.reg(Fine::CheckStatus, am4_recv::STATUS_REG);
        node.cpu.ctrl(am4_recv::CTRL);
        let (_, tag) = node.ni.latch_rx().expect("poll_status saw a packet");
        let header = node.ni.read_header();
        if tag == want {
            let (w0, w1) = node.ni.read_payload2();
            let (w2, w3) = node.ni.read_payload2();
            return Some((header, [w0, w1, w2, w3]));
        }
        node.cpu.clone().with_feature(Feature::FaultTol, |cpu| {
            cpu.reg(Fine::RegOp, recovery::STRAY_DISCARD_REG);
        });
        node.ni.drop_latched();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::CmamConfig;
    use timego_netsim::{
        DeliveryScript, FaultConfig, Mesh2D, ScriptedNetwork, SwitchedConfig, SwitchedNetwork,
    };
    use timego_ni::share;

    fn n(i: usize) -> NodeId {
        NodeId::new(i)
    }

    fn scripted_machine(script: DeliveryScript) -> Machine {
        Machine::new(
            share(ScriptedNetwork::new(2, script)),
            2,
            CmamConfig::default(),
        )
    }

    fn switched_machine(fault: FaultConfig, seed: u64) -> Machine {
        // Roomy queues: no injection backpressure, so runs that differ
        // only in faults stay comparable packet-for-packet.
        let net = SwitchedNetwork::new(
            Mesh2D::new(2, 1),
            SwitchedConfig {
                rx_queue_capacity: 4096,
                link_queue_capacity: 256,
                fault,
                seed,
                ..SwitchedConfig::default()
            },
        );
        Machine::new(share(net), 2, CmamConfig::default())
    }

    fn feature_totals(m: &Machine, node: NodeId) -> Vec<(Feature, u64)> {
        let snap = m.cpu(node).snapshot();
        Feature::ALL
            .into_iter()
            .map(|f| (f, snap.feature_total(f)))
            .collect()
    }

    #[test]
    fn clean_run_costs_exactly_match_xfer() {
        // The acceptance gate: with all fault probabilities zero,
        // `xfer_reliable` reports per-feature instruction counts
        // identical to `xfer` — recovery support costs nothing until a
        // fault happens.
        for script in [DeliveryScript::InOrder, DeliveryScript::AlternateSwap] {
            let data: Vec<u32> = (0..64).map(|i| i * 7 + 3).collect();
            let mut plain = scripted_machine(script);
            plain.reset_costs();
            plain.xfer(n(0), n(1), &data).unwrap();

            let mut reliable = scripted_machine(script);
            reliable.reset_costs();
            let out = reliable
                .xfer_reliable(n(0), n(1), &data, &RetryPolicy::default())
                .unwrap();
            assert_eq!(out.handshake_retries, 0);
            assert_eq!(out.data_retransmits, 0);
            assert_eq!(out.nack_rounds, 0);
            assert_eq!(out.ack_probes, 0);
            assert_eq!(out.xfer.packets, 16);

            for node in [n(0), n(1)] {
                assert_eq!(
                    feature_totals(&plain, node),
                    feature_totals(&reliable, node),
                    "{script:?} node {node:?}: clean reliable run must cost exactly what xfer costs"
                );
            }
        }
    }

    #[test]
    fn clean_switched_run_costs_exactly_match_xfer() {
        // Same gate over a real store-and-forward substrate (latency,
        // backpressure) instead of the instant scripted network.
        let data: Vec<u32> = (0..128).collect();
        let mut plain = switched_machine(FaultConfig::default(), 7);
        plain.reset_costs();
        plain.xfer(n(0), n(1), &data).unwrap();

        let mut reliable = switched_machine(FaultConfig::default(), 7);
        reliable.reset_costs();
        reliable
            .xfer_reliable(n(0), n(1), &data, &RetryPolicy::default())
            .unwrap();

        for node in [n(0), n(1)] {
            assert_eq!(
                feature_totals(&plain, node),
                feature_totals(&reliable, node),
                "clean switched run must cost exactly what xfer costs"
            );
        }
    }

    #[test]
    fn recovers_from_packet_drops() {
        let fault = FaultConfig {
            drop_prob: 0.1,
            ..FaultConfig::default()
        };
        let data: Vec<u32> = (0..256).map(|i| i ^ 0xABCD).collect();
        let mut ok = 0;
        for seed in 0..8 {
            let mut m = switched_machine(fault.clone(), seed);
            let out = m
                .xfer_reliable(n(0), n(1), &data, &RetryPolicy::default())
                .expect("reliable transfer must survive 10% drops");
            assert_eq!(
                m.read_buffer(n(1), out.xfer.dst_buffer, data.len()),
                data,
                "seed {seed}: payload must be byte-exact"
            );
            if out.data_retransmits > 0 || out.handshake_retries > 0 || out.ack_probes > 0 {
                ok += 1;
            }
        }
        assert!(ok > 0, "at least one seed must actually exercise recovery");
    }

    #[test]
    fn recovery_work_lands_in_fault_tolerance() {
        let fault = FaultConfig {
            drop_prob: 0.15,
            ..FaultConfig::default()
        };
        let data: Vec<u32> = (0..256).collect();
        // Find a seed whose run drops data packets but leaves the
        // handshake and acknowledgement clean, so the non-recovery
        // features can be compared against a fault-free baseline.
        for seed in 0..32 {
            let mut m = switched_machine(fault.clone(), seed);
            m.reset_costs();
            let out = m
                .xfer_reliable(n(0), n(1), &data, &RetryPolicy::default())
                .unwrap();
            if out.data_retransmits == 0 || out.handshake_retries > 0 || out.ack_probes > 0 {
                continue;
            }
            let mut clean = switched_machine(FaultConfig::default(), seed);
            clean.reset_costs();
            clean
                .xfer_reliable(n(0), n(1), &data, &RetryPolicy::default())
                .unwrap();
            // Base / buffer management / in-order totals are untouched
            // by recovery; the delta is all fault tolerance.
            for node in [n(0), n(1)] {
                let faulted = m.cpu(node).snapshot();
                let baseline = clean.cpu(node).snapshot();
                assert_eq!(
                    faulted.feature_total(Feature::InOrder),
                    baseline.feature_total(Feature::InOrder),
                    "in-order totals must not change under recovery"
                );
                assert_eq!(
                    faulted.feature_total(Feature::BufferMgmt),
                    baseline.feature_total(Feature::BufferMgmt),
                    "buffer management totals must not change under recovery"
                );
            }
            assert!(
                m.cpu(n(0)).snapshot().feature_total(Feature::FaultTol)
                    + m.cpu(n(1)).snapshot().feature_total(Feature::FaultTol)
                    > clean.cpu(n(0)).snapshot().feature_total(Feature::FaultTol)
                        + clean.cpu(n(1)).snapshot().feature_total(Feature::FaultTol),
                "recovery must be visible in the fault-tolerance feature"
            );
            return;
        }
        panic!("no seed exercised a data retransmission");
    }

    #[test]
    fn oversized_transfer_is_rejected() {
        let mut m = scripted_machine(DeliveryScript::InOrder);
        let data = vec![0u32; 1 << OFFSET_BITS];
        assert!(matches!(
            m.xfer_reliable(n(0), n(1), &data, &RetryPolicy::default()),
            Err(ProtocolError::BadTransfer(_))
        ));
    }
}
