//! Active-message types.

use timego_netsim::NodeId;

/// A received four-word active message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Am4Msg {
    /// Sending node.
    pub src: NodeId,
    /// Hardware message tag (handler selector).
    pub tag: u8,
    /// The packet header word (0 for plain `am4` sends; protocols use it
    /// for offsets/sequence numbers).
    pub header: u32,
    /// The four payload words.
    pub words: [u32; 4],
}

/// Result of one [`Machine::poll`](crate::Machine::poll).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PollOutcome {
    /// No packet was waiting.
    Idle,
    /// A message was dispatched to the handler registered for its tag.
    Handled(u8),
    /// A packet arrived with no registered handler (or a reserved
    /// protocol tag outside its protocol phase); the message is handed
    /// back to the caller.
    Unclaimed(Am4Msg),
}

impl PollOutcome {
    /// Whether a packet was consumed (handled or unclaimed).
    pub fn received(&self) -> bool {
        !matches!(self, PollOutcome::Idle)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn received_classification() {
        assert!(!PollOutcome::Idle.received());
        assert!(PollOutcome::Handled(20).received());
        let msg = Am4Msg {
            src: NodeId::new(0),
            tag: 9,
            header: 0,
            words: [0; 4],
        };
        assert!(PollOutcome::Unclaimed(msg).received());
    }
}
