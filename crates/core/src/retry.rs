//! Retry policy for the fault-tolerant protocol variants.
//!
//! The paper's CMAM protocols *detect* losses (via the end-to-end
//! acknowledgement) but do not recover: a lost packet fails the whole
//! transfer. [`RetryPolicy`] parameterizes the recovery added by
//! [`Machine::xfer_reliable`](crate::Machine::xfer_reliable) and
//! [`Machine::rpc_call_retrying`](crate::Machine::rpc_call_retrying):
//! how many attempts, how long each waits, and how the waits grow.
//!
//! Backoff is exponential in cycles with a deterministic per-attempt
//! jitter (a splitmix64 hash of seed and attempt number), so two runs
//! with the same seed wait identically — fault-injection experiments
//! stay bit-reproducible.

use timego_netsim::rng::splitmix64;

/// Bounded-attempt exponential backoff with deterministic jitter.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total attempts, including the first (`1` disables recovery).
    pub max_attempts: u32,
    /// Cycles the first attempt waits before declaring a loss.
    pub base_wait: u64,
    /// Upper bound on any attempt's wait (pre-jitter).
    pub max_wait: u64,
    /// Maximum extra cycles added per attempt; the actual jitter is a
    /// deterministic function of `seed` and the attempt number.
    pub jitter: u64,
    /// Seed for the jitter hash.
    pub seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 10,
            // Generous relative to simulated network latencies (tens of
            // cycles), tiny relative to `max_wait_cycles` (2^20): a
            // clean run never sees the deadline, a faulted run recovers
            // promptly.
            base_wait: 4_096,
            max_wait: 1 << 16,
            jitter: 64,
            seed: 0x7e7a_11ce,
        }
    }
}

impl RetryPolicy {
    /// No recovery: a single attempt, paper-faithful fail-on-loss.
    #[must_use]
    pub fn none() -> Self {
        RetryPolicy { max_attempts: 1, ..RetryPolicy::default() }
    }

    /// The wait window (in cycles) for attempt `attempt` (0-based):
    /// `min(base_wait << attempt, max_wait)` plus deterministic jitter.
    #[must_use]
    pub fn backoff(&self, attempt: u32) -> u64 {
        let exp = if attempt >= self.base_wait.leading_zeros() {
            self.max_wait // the shift would overflow; saturate at the cap
        } else {
            (self.base_wait << attempt).min(self.max_wait)
        };
        let j = if self.jitter == 0 {
            0
        } else {
            splitmix64(self.seed ^ u64::from(attempt)) % (self.jitter + 1)
        };
        exp.saturating_add(j)
    }
}

/// Engine-native recovery: how many times the scheduler itself may
/// *re-execute* an operation that settles with a retryable error
/// ([`ProtocolError::is_retryable`](crate::ProtocolError::is_retryable)),
/// and how long to back off between executions.
///
/// Attach one at submission with the engine's `submit_*_recovering`
/// variants: instead of surfacing a `SessionReset`, `Timeout` or
/// `DeadlineExceeded` to the caller, the engine parks the operation for
/// the backoff window and re-runs it under a fresh session epoch — the
/// operation keeps its [`OpId`](crate::OpId), so run-after dependents
/// stay held and release when the recovered execution finally succeeds.
/// Every re-execution bills the session-restart constants to
/// `Feature::FaultTol` at the operation's source node; a clean run
/// executes (and costs) exactly what the non-recovering submission
/// does.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecoveryPolicy {
    /// Total executions the engine may run, including the first
    /// (`1` disables engine-native recovery).
    pub max_executions: u32,
    /// Backoff between executions (the wait before re-execution `k`
    /// is `backoff.backoff(k - 1)`).
    pub backoff: RetryPolicy,
}

impl Default for RecoveryPolicy {
    fn default() -> Self {
        RecoveryPolicy {
            max_executions: 6,
            backoff: RetryPolicy::default(),
        }
    }
}

impl RecoveryPolicy {
    /// No engine-native recovery: one execution, errors surface to the
    /// caller exactly as without a policy.
    #[must_use]
    pub fn none() -> Self {
        RecoveryPolicy { max_executions: 1, ..RecoveryPolicy::default() }
    }

    /// The park window (in cycles) before re-execution `re_execution`
    /// (1-based: the first recovery waits `backoff.backoff(0)`).
    #[must_use]
    pub fn window(&self, re_execution: u32) -> u64 {
        self.backoff.backoff(re_execution.saturating_sub(1))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_grows_exponentially_then_caps() {
        let p = RetryPolicy { jitter: 0, ..RetryPolicy::default() };
        assert_eq!(p.backoff(0), 4_096);
        assert_eq!(p.backoff(1), 8_192);
        assert_eq!(p.backoff(2), 16_384);
        assert_eq!(p.backoff(10), p.max_wait, "capped");
        assert_eq!(p.backoff(63), p.max_wait, "shift overflow saturates");
    }

    #[test]
    fn jitter_is_deterministic_and_bounded() {
        let p = RetryPolicy::default();
        for a in 0..16 {
            let w = p.backoff(a);
            assert_eq!(w, p.backoff(a), "same attempt, same wait");
            let base = RetryPolicy { jitter: 0, ..p.clone() }.backoff(a);
            assert!(w >= base && w <= base + p.jitter, "attempt {a}: {w}");
        }
        // Different seeds give different jitter somewhere in the range.
        let q = RetryPolicy { seed: 99, ..p.clone() };
        assert!((0..16).any(|a| p.backoff(a) != q.backoff(a)));
    }

    #[test]
    fn none_means_single_attempt() {
        assert_eq!(RetryPolicy::none().max_attempts, 1);
    }
}
