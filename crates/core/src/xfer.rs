//! The CMAM finite-sequence, multi-packet protocol (`CMAM_xfer`).
//!
//! Six steps (Figure 3 of the paper):
//!
//! 1. the sender sends an allocation **request**;
//! 2. the receiver **allocates a communication segment**;
//! 3. the receiver **replies** with the segment id;
//! 4. the sender streams **data packets**, each carrying a target-buffer
//!    offset in its header word (this is how in-order placement is
//!    achieved without sequence numbers);
//! 5. on completion the receiver **frees the segment**;
//! 6. the receiver sends an end-to-end **acknowledgement**.
//!
//! Feature attribution follows the paper: steps 1–3 and 5 are buffer
//! management, the offsets and the expected-count bookkeeping are
//! in-order delivery, step 6 is fault tolerance, and everything else is
//! base data movement.

use timego_cost::{Feature, Fine};
use timego_netsim::NodeId;
use timego_ni::Addr;

use crate::costs::{segment, xfer_order, xfer_recv, xfer_send};
use crate::engine::{Engine, OpOutcome};
use crate::error::ProtocolError;
use crate::machine::{Machine, Node, Tags};

/// Result of a completed finite-sequence transfer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct XferOutcome {
    /// Destination buffer holding the transferred words.
    pub dst_buffer: Addr,
    /// Data packets transmitted.
    pub packets: u64,
    /// Segment id the receiver allocated for this transfer.
    pub segment_id: u32,
    /// Data-packet injections refused with backpressure and re-issued.
    pub send_retries: u64,
}

/// How the source CPU moves payload words into the NI.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum PayloadEngine {
    /// Programmed I/O: the CPU loads from memory and stores to the NI
    /// FIFO (the CM-5 way; `n/2` mem + `n/2` dev per packet).
    Cpu,
    /// A DMA engine fetches payload directly from memory after the CPU
    /// stores one descriptor (§5's "improved network interfaces and DMA
    /// hardware" discussion).
    Dma,
}

/// Incremental receive state for an in-progress transfer, so the
/// destination can drain packets while the source is still blocked on
/// injection (required on finite-buffer substrates).
pub(crate) struct XferRx {
    pub(crate) buffer: Addr,
    pub(crate) packets_expected: u64,
    pub(crate) packets_received: u64,
}

impl Machine {
    /// Run a complete finite-sequence transfer of `data` from `src`
    /// memory to a freshly allocated segment on `dst`, over whatever
    /// substrate the machine uses.
    ///
    /// The returned [`XferOutcome::dst_buffer`] can be checked with
    /// [`Machine::read_buffer`].
    ///
    /// # Errors
    ///
    /// [`ProtocolError::BadTransfer`] for empty data;
    /// [`ProtocolError::Timeout`] if a protocol phase starves (e.g. a
    /// packet was corrupted and dropped by a detect-only network — this
    /// protocol has no per-packet retransmission, so like the paper's
    /// CM-5 the transfer simply fails);
    /// [`ProtocolError::UnexpectedPacket`] if a foreign packet intrudes
    /// on the handshake.
    ///
    /// # Panics
    ///
    /// Panics if `src` or `dst` is out of range or `src == dst`.
    pub fn xfer(&mut self, src: NodeId, dst: NodeId, data: &[u32]) -> Result<XferOutcome, ProtocolError> {
        self.xfer_with(src, dst, data, PayloadEngine::Cpu)
    }

    pub(crate) fn xfer_with(
        &mut self,
        src: NodeId,
        dst: NodeId,
        data: &[u32],
        engine: PayloadEngine,
    ) -> Result<XferOutcome, ProtocolError> {
        let mut eng = Engine::new();
        let op = eng.submit_xfer_with(self, src, dst, data, engine)?;
        eng.run(self);
        match eng.take_outcome(op).expect("op completed") {
            Ok(OpOutcome::Xfer(out)) => Ok(out),
            Err(e) => Err(e),
            Ok(_) => unreachable!("xfer op yields a transfer outcome"),
        }
    }

    /// Steps 1–3 of the protocol: the sender requests a communication
    /// segment sized for `words` words, the receiver allocates it,
    /// associates a segment id, and replies. All costs are buffer
    /// management. Returns the segment id and its buffer.
    pub(crate) fn xfer_handshake(&mut self, src: NodeId, dst: NodeId, words: usize) -> Result<(u32, Addr), ProtocolError> {
        let n = self.cfg.packet_words;
        let max_wait = self.cfg.max_wait_cycles;

        // Step 1: allocation request.
        {
            let node = self.node_mut(src);
            node.cpu.clone().with_feature(Feature::BufferMgmt, |_| {
                send_ctl_retrying(node, dst, Tags::XFER_REQ, words as u32, [0; 4], max_wait)
            })?;
        }

        // Steps 2–3: receiver allocates a segment and replies.
        let (segment_id, rx_buffer) = {
            let node = self.node_mut(dst);
            let cpu = node.cpu.clone();
            cpu.with_feature(Feature::BufferMgmt, |_| -> Result<_, ProtocolError> {
                node.wait_rx(max_wait, "xfer request")?;
                let (_, tag, header, _) = node.recv_ctl().expect("wait_rx saw a packet");
                if tag != Tags::XFER_REQ {
                    return Err(ProtocolError::UnexpectedPacket { tag });
                }
                let words = header as usize;
                // Allocation itself is free (as in the paper); rounding
                // up to whole packets keeps the double-word stores of a
                // padded final packet in bounds.
                let buffer = node.mem.alloc(words.div_ceil(n) * n);
                // Associate the segment id with the target buffer.
                node.cpu.reg(Fine::RegOp, segment::ASSOCIATE_REG);
                node.cpu.mem_store(segment::ASSOCIATE_MEM);
                let seg = (buffer.0 & 0xffff) as u32 ^ 0x5e60_0000;
                send_ctl_retrying(node, src, Tags::XFER_REPLY, seg, [0; 4], max_wait)?;
                Ok((seg, buffer))
            })?
        };

        // Step 3 (source side): receive the reply.
        {
            let node = self.node_mut(src);
            let cpu = node.cpu.clone();
            cpu.with_feature(Feature::BufferMgmt, |_| -> Result<_, ProtocolError> {
                node.wait_rx(max_wait, "xfer reply")?;
                let (_, tag, header, _) = node.recv_ctl().expect("wait_rx saw a packet");
                if tag != Tags::XFER_REPLY {
                    return Err(ProtocolError::UnexpectedPacket { tag });
                }
                debug_assert_eq!(header, segment_id);
                Ok(())
            })?;
        }

        Ok((segment_id, rx_buffer))
    }

    /// Send one data packet of the transfer: move `n` words from the
    /// source buffer into the NI (by programmed I/O or DMA), stage them
    /// with the target offset in the header word, and commit. Returns
    /// `false` on backpressure (nothing delivered; caller re-issues and
    /// the costs are paid again, as on the real machine).
    ///
    /// `hdr_tag` is OR-ed into the header's high bits; the reliable
    /// variant uses it to stamp a per-transfer nonce so stale duplicates
    /// from an earlier transfer are recognizable (plain `xfer` passes 0).
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn send_data_packet(
        &mut self,
        src: NodeId,
        dst: NodeId,
        buf: Addr,
        offset: u64,
        n: usize,
        engine: PayloadEngine,
        hdr_tag: u32,
    ) -> bool {
        let node = self.node_mut(src);
        // In-order delivery: increment and stage the buffer offset. When
        // the caller already runs in a fault-tolerance scope (a selective
        // retransmission), the bookkeeping is recovery work and stays
        // attributed there.
        if node.cpu.current_feature() == Feature::FaultTol {
            node.cpu.reg(Fine::RegOp, xfer_order::SRC_PER_PACKET);
        } else {
            node.cpu.clone().with_feature(Feature::InOrder, |cpu| {
                cpu.reg(Fine::RegOp, xfer_order::SRC_PER_PACKET);
            });
        }
        match engine {
            PayloadEngine::Cpu => {
                node.cpu.ctrl(xfer_send::LOOP_CTRL);
                node.cpu.reg(Fine::RegOp, xfer_send::PTR_ADVANCE);
                node.cpu.reg(Fine::NiSetup, xfer_send::SETUP_REG);
                node.ni.stage_envelope(dst, Tags::XFER_DATA, hdr_tag | offset as u32);
                for d in 0..(n / 2) {
                    let (w0, w1) = node.mem.load2(buf.offset(offset as usize + 2 * d));
                    node.ni.push_payload2(w0, w1);
                }
                node.cpu.reg(Fine::CheckStatus, xfer_send::STATUS_REG);
            }
            PayloadEngine::Dma => {
                // The CPU only builds a descriptor: tighter loop (2
                // control + 2 pointer + 2 setup + 2 status registers),
                // one envelope store, one descriptor store, and no
                // per-word loads or stores at all.
                node.cpu.ctrl(2);
                node.cpu.reg(Fine::RegOp, 2);
                node.cpu.reg(Fine::NiSetup, 2);
                node.ni.stage_envelope(dst, Tags::XFER_DATA, hdr_tag | offset as u32);
                node.ni.dma_stage_payload(&node.mem, buf.offset(offset as usize), n);
                node.cpu.reg(Fine::CheckStatus, 2);
            }
        }
        node.ni.commit_send() && {
            node.ni.load_send_status();
            true
        }
    }

    /// Drain every data packet currently waiting at the receiver,
    /// storing payloads at their carried offsets.
    pub(crate) fn drain_data_packets(&mut self, dst: NodeId, n: usize, rx: &mut XferRx) {
        while rx.packets_received < rx.packets_expected {
            if !self.recv_one_data_packet(dst, n, rx) {
                return;
            }
        }
    }

    /// Receive exactly one data packet of the transfer, storing its
    /// payload at the carried offset. Returns `false` (after the
    /// discovery latch) when nothing is waiting.
    pub(crate) fn recv_one_data_packet(&mut self, dst: NodeId, n: usize, rx: &mut XferRx) -> bool {
        let node = self.node_mut(dst);
        let Some((_, tag)) = node.ni.latch_rx() else {
            return false;
        };
        debug_assert_eq!(tag, Tags::XFER_DATA, "only data packets in flight during step 4");
        node.cpu.reg(Fine::Handler, xfer_recv::PER_PACKET_REG);
        let offset = node.ni.read_header();
        // In-order delivery: extract the offset and decrement the
        // (register-cached) expected-packet count.
        node.cpu.clone().with_feature(Feature::InOrder, |cpu| {
            cpu.reg(Fine::RegOp, xfer_order::DST_PER_PACKET);
        });
        for d in 0..(n / 2) {
            let (w0, w1) = node.ni.read_payload2();
            node.mem.store2(rx.buffer.offset(offset as usize + 2 * d), w0, w1);
        }
        rx.packets_received += 1;
        true
    }
}

/// Issue a 4-word control packet, re-issuing on backpressure until the
/// network accepts it or the wait bound is exceeded.
pub(crate) fn send_ctl_retrying(
    node: &mut Node,
    dst: NodeId,
    tag: u8,
    header: u32,
    words: [u32; 4],
    max_wait: u64,
) -> Result<(), ProtocolError> {
    let mut waited = 0;
    while !node.send_ctl(dst, tag, header, words) {
        if waited >= max_wait {
            return Err(ProtocolError::timeout("control-packet injection", waited));
        }
        node.ni.advance(1);
        waited += 1;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::CmamConfig;
    use timego_cost::{Endpoint, Feature};
    use timego_netsim::{DeliveryScript, ScriptedNetwork};
    use timego_ni::share;

    fn n(i: usize) -> NodeId {
        NodeId::new(i)
    }

    fn machine() -> Machine {
        Machine::new(
            share(ScriptedNetwork::new(2, DeliveryScript::InOrder)),
            2,
            CmamConfig::default(),
        )
    }

    #[test]
    fn transfers_data_correctly() {
        let mut m = machine();
        let data: Vec<u32> = (0..64).map(|i| i * 3 + 1).collect();
        let out = m.xfer(n(0), n(1), &data).unwrap();
        assert_eq!(out.packets, 16);
        assert_eq!(m.read_buffer(n(1), out.dst_buffer, data.len()), data);
    }

    #[test]
    fn partial_final_packet_is_padded_not_truncated() {
        let mut m = machine();
        let data: Vec<u32> = (0..13).collect(); // 13 words = 3.25 packets
        let out = m.xfer(n(0), n(1), &data).unwrap();
        assert_eq!(out.packets, 4);
        assert_eq!(m.read_buffer(n(1), out.dst_buffer, 13), data);
    }

    #[test]
    fn empty_transfer_is_rejected() {
        let mut m = machine();
        assert!(matches!(
            m.xfer(n(0), n(1), &[]),
            Err(ProtocolError::BadTransfer(_))
        ));
    }

    #[test]
    fn sixteen_word_costs_match_reconstructed_table2() {
        let mut m = machine();
        let data: Vec<u32> = (0..16).collect();
        m.reset_costs();
        m.xfer(n(0), n(1), &data).unwrap();
        let src = m.cpu(n(0)).snapshot();
        let dst = m.cpu(n(1)).snapshot();
        // DESIGN.md §3: reconstructed finite-sequence 16-word block.
        assert_eq!(src.feature_total(Feature::Base), 91);
        assert_eq!(dst.feature_total(Feature::Base), 90);
        assert_eq!(src.feature_total(Feature::BufferMgmt), 47);
        assert_eq!(dst.feature_total(Feature::BufferMgmt), 101);
        assert_eq!(src.feature_total(Feature::InOrder), 8);
        assert_eq!(dst.feature_total(Feature::InOrder), 13);
        assert_eq!(src.feature_total(Feature::FaultTol), 27);
        assert_eq!(dst.feature_total(Feature::FaultTol), 20);
        assert_eq!(src.total(), 173);
        assert_eq!(dst.total(), 224);
    }

    #[test]
    fn matches_analytic_model_at_1024_words() {
        let mut m = machine();
        let data: Vec<u32> = (0..1024).collect();
        m.reset_costs();
        m.xfer(n(0), n(1), &data).unwrap();
        let model = timego_cost::analytic::cmam_finite(
            timego_cost::analytic::MsgShape::paper(1024).unwrap(),
        );
        let src = m.cpu(n(0)).snapshot();
        let dst = m.cpu(n(1)).snapshot();
        for f in Feature::ALL {
            assert_eq!(
                src.feature(f),
                model.get(Endpoint::Source, f),
                "source {f} mismatch"
            );
            assert_eq!(
                dst.feature(f),
                model.get(Endpoint::Destination, f),
                "destination {f} mismatch"
            );
        }
        assert_eq!(src.total() + dst.total(), 11737, "Table 2 grand total");
    }
}
