//! Interrupt-driven reception — the alternative the paper declines.
//!
//! Footnote 2 of the paper: *"The CM-5 NI also supports an
//! interrupt-driven interface for reception; however, the cost for
//! interrupts is very high for the SPARC processor."* This module makes
//! that trade-off measurable: a message can be delivered through a
//! simulated receive interrupt instead of a poll, paying a configurable
//! trap entry/exit cost (register windows, PSR save/restore) but no
//! polling at all.
//!
//! The polling discipline costs `27` instructions per delivered message
//! plus `13` per *idle* poll (the more often the application checks, the
//! more it pays when nothing is there); the interrupt discipline costs
//! `entry + 25 + exit` per message and nothing when idle. The crossover
//! analysis in [`polling_vs_interrupt`] quantifies when each wins.

use timego_cost::Fine;
use timego_netsim::NodeId;

use crate::am::{Am4Msg, PollOutcome};
use crate::costs::am4_recv;
use crate::machine::{Machine, Tags};

/// Cost model for a receive interrupt, in register instructions.
///
/// The default approximates a SPARC-class trap: spilling a register
/// window and saving processor state on entry, restoring on exit —
/// expensive relative to a 27-instruction polled receive, which is the
/// paper's stated reason CMAM polls.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InterruptModel {
    /// Trap entry: vectoring, window spill, state save.
    pub entry: u64,
    /// Trap exit: state restore, return from trap.
    pub exit: u64,
}

impl Default for InterruptModel {
    fn default() -> Self {
        InterruptModel { entry: 85, exit: 47 }
    }
}

impl InterruptModel {
    /// Instructions per message delivered by interrupt: trap overhead
    /// plus the receive path with neither the status poll nor the
    /// procedure-call overhead (the trap handler *is* the entry): latch,
    /// tag vectoring, header and payload loads — 16 instructions.
    pub fn per_message(&self) -> u64 {
        self.entry + 16 + self.exit
    }

    /// Idle polls per message at which interrupt delivery becomes
    /// cheaper than polling (27 per message + 13 per idle poll).
    pub fn breakeven_idle_polls(&self) -> f64 {
        (self.per_message() as f64 - 27.0) / 13.0
    }
}

/// One row of the polling-versus-interrupt comparison.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DisciplineCosts {
    /// Idle polls the application performs per delivered message.
    pub idle_polls: u64,
    /// Total polled-discipline cost per message.
    pub polling: u64,
    /// Total interrupt-discipline cost per message.
    pub interrupt: u64,
}

/// Compare receive disciplines across application polling rates:
/// `idle_polls` is how many empty status checks the application makes
/// per message it actually receives (a compute-bound application polls
/// rarely but pays interrupts; a communication-bound one polls
/// constantly and the polls are never idle).
pub fn polling_vs_interrupt(model: InterruptModel, idle_poll_rates: &[u64]) -> Vec<DisciplineCosts> {
    idle_poll_rates
        .iter()
        .map(|&idle_polls| DisciplineCosts {
            idle_polls,
            polling: 27 + 13 * idle_polls,
            interrupt: model.per_message(),
        })
        .collect()
}

impl Machine {
    /// Deliver one waiting message to `node` via a simulated receive
    /// interrupt: trap entry, latch + read (no status poll — the
    /// interrupt is the notification), dispatch, trap exit.
    ///
    /// Returns [`PollOutcome::Idle`] without cost if nothing is waiting
    /// (no interrupt would have fired).
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    pub fn deliver_by_interrupt(&mut self, node: NodeId, model: InterruptModel) -> PollOutcome {
        if self.net.borrow().rx_pending(node) == 0 {
            return PollOutcome::Idle;
        }
        let n = &mut self.nodes[node.index()];
        n.cpu.reg(Fine::CallReturn, model.entry);
        let Some((src, tag)) = n.ni.latch_rx() else {
            n.cpu.reg(Fine::CallReturn, model.exit);
            return PollOutcome::Idle;
        };
        // Same extraction as the polled path, minus the status poll.
        n.cpu.reg(Fine::CheckStatus, am4_recv::STATUS_REG);
        n.cpu.ctrl(am4_recv::CTRL);
        let header = n.ni.read_header();
        let (w0, w1) = n.ni.read_payload2();
        let (w2, w3) = n.ni.read_payload2();
        let msg = Am4Msg { src, tag, header, words: [w0, w1, w2, w3] };
        let out = if tag < Tags::USER_BASE {
            PollOutcome::Unclaimed(msg)
        } else {
            match n.handlers_take(tag) {
                Some(mut h) => {
                    n.cpu.handler(2);
                    h(&mut n.mem, msg);
                    self.nodes[node.index()].handlers_put(tag, h);
                    PollOutcome::Handled(tag)
                }
                None => PollOutcome::Unclaimed(msg),
            }
        };
        self.nodes[node.index()].cpu.reg(Fine::CallReturn, model.exit);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::CmamConfig;
    use timego_netsim::{DeliveryScript, ScriptedNetwork};
    use timego_ni::share;

    fn machine() -> Machine {
        Machine::new(
            share(ScriptedNetwork::new(2, DeliveryScript::InOrder)),
            2,
            CmamConfig::default(),
        )
    }

    #[test]
    fn interrupt_delivery_works_and_costs_trap_overhead() {
        let mut m = machine();
        m.register_handler(NodeId::new(1), 20, |_, _| {});
        m.am4_send(NodeId::new(0), NodeId::new(1), 20, [1, 2, 3, 4]).unwrap();
        m.cpu(NodeId::new(1)).reset();
        let model = InterruptModel::default();
        let out = m.deliver_by_interrupt(NodeId::new(1), model);
        assert_eq!(out, PollOutcome::Handled(20));
        let v = m.cpu(NodeId::new(1)).snapshot();
        // entry + (26 receive) + 2 handler dispatch + exit.
        assert_eq!(v.total(), model.per_message() + 2);
    }

    #[test]
    fn no_interrupt_fires_when_idle() {
        let mut m = machine();
        let out = m.deliver_by_interrupt(NodeId::new(1), InterruptModel::default());
        assert_eq!(out, PollOutcome::Idle);
        assert!(m.cpu(NodeId::new(1)).snapshot().is_empty());
    }

    #[test]
    fn breakeven_matches_the_formula() {
        let model = InterruptModel { entry: 85, exit: 47 };
        // per message = 85 + 16 + 47 = 148; (148-27)/13 ≈ 9.3.
        assert_eq!(model.per_message(), 148);
        assert!((model.breakeven_idle_polls() - 121.0 / 13.0).abs() < 1e-9);
        let rows = polling_vs_interrupt(model, &[0, 5, 9, 10, 20]);
        assert!(rows[0].polling < rows[0].interrupt, "hot polling wins");
        assert!(rows[4].polling > rows[4].interrupt, "idle machine prefers interrupts");
    }

    #[test]
    fn interrupt_receive_data_is_correct() {
        let mut m = machine();
        m.am4_send(NodeId::new(0), NodeId::new(1), 33, [9, 8, 7, 6]).unwrap();
        match m.deliver_by_interrupt(NodeId::new(1), InterruptModel::default()) {
            PollOutcome::Unclaimed(msg) => {
                assert_eq!(msg.tag, 33);
                assert_eq!(msg.words, [9, 8, 7, 6]);
            }
            other => panic!("expected unclaimed, got {other:?}"),
        }
    }
}
